"""The supervised routing core: :class:`RouteService`.

A synchronous engine (the asyncio socket front end in
:mod:`repro.service.server` is a thin adapter over it) built around
one invariant — **every submitted request resolves exactly one
terminal :class:`RouteResponse`**, whatever the workers do:

* **bounded intake / load shedding** — admission pushes into a bounded
  queue; a full queue resolves the request immediately with a typed
  ``overloaded`` error instead of building unbounded backlog;
* **route-plan cache** — admission and dispatch both probe the LRU
  (:mod:`repro.service.cache`); hits resolve without touching a
  worker and are tagged ``cache_hit=True``;
* **supervised workers** — each request runs in one of a fixed pool
  of persistent worker processes (:mod:`repro.service.worker`) over a
  per-worker pipe.  The dispatcher detects death (``is_alive`` /
  broken pipe) and hangs (stale heartbeats), SIGKILLs and restarts the
  worker, and **requeues the in-flight request exactly once** with a
  seeded, deadline-capped backoff (:func:`repro.retry.retry_delay`);
* **per-request deadline** — one budget spans all attempts; when it
  expires the request resolves ``timeout`` and the worker still
  grinding on it is recycled;
* **circuit breaker + graceful degradation** — consecutive
  ``budget-exceeded`` / ``timeout`` failures per ``(scheme,
  topology)`` open a breaker; while open, requests go straight to the
  scheme's registered ``fallback`` (tagged ``degraded=True``), with a
  single half-open probe after the cooldown.  A lone
  ``budget-exceeded`` also falls back immediately — degradation is
  per-request, the breaker just skips the doomed primary attempt;
* **chaos hooks** — a seeded :class:`~repro.service.chaos.ChaosPlan`
  sabotages attempt-0 dispatches (kill / delay / drop / stall) so the
  robustness suite can prove the machinery above actually recovers.

Threading model: ``submit()`` (any thread) only touches the intake
queue, the cache, and the counters lock; all worker and breaker state
belongs to the single dispatcher thread.  Futures are resolved exactly
once, guarded by the dispatch record's ``resolved`` flag.

The discipline is machine-checked: attributes carry ``# owned-by:
dispatcher`` / ``# guarded-by: _lock`` annotations and dispatcher-only
methods carry ``# thread: dispatcher``, which the
``dispatcher-ownership`` / ``guarded-mutation`` / ``lock-discipline``
rules of :mod:`repro.analysis.lint` verify over the AST, and the
protocol itself is verified exhaustively by ``python -m repro
modelcheck`` (:mod:`repro.analysis.model`).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

from .. import registry
from ..parallel import kill_process
from ..retry import retry_delay
from .cache import CacheKey, RoutePlanCache, route_key
from .chaos import ChaosPlan
from .protocol import RouteRequest, RouteResponse
from .worker import _parse_topology, worker_main

__all__ = ["CircuitBreaker", "RouteService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`RouteService` (validated)."""

    workers: int = 2
    queue_bound: int = 64
    cache_capacity: int = 1024
    #: default per-request wall-clock budget (seconds, all attempts).
    request_deadline: float = 10.0
    #: crashed/hung dispatches are requeued at most this many times.
    retry_limit: int = 1
    retry_base: float = 0.005
    retry_factor: float = 2.0
    retry_jitter: float = 0.5
    heartbeat_interval: float = 0.05
    #: a worker silent for this long is declared hung and recycled.
    heartbeat_timeout: float = 2.0
    #: consecutive breaker-visible failures that open the circuit.
    breaker_threshold: int = 3
    #: seconds an open breaker waits before its half-open probe.
    breaker_cooldown: float = 5.0
    #: seeds the retry-jitter stream (and the chaos stream, see plan).
    seed: int = 1
    chaos: ChaosPlan | None = None

    def __post_init__(self) -> None:
        def require(ok: bool, name: str, why: str) -> None:
            if not ok:
                raise ValueError(
                    f"ServiceConfig.{name} = {getattr(self, name)!r}: {why}"
                )

        require(self.workers >= 1, "workers", "need at least one worker")
        require(self.queue_bound >= 1, "queue_bound", "need a positive bound")
        require(self.cache_capacity >= 0, "cache_capacity", "cannot be negative")
        require(self.request_deadline > 0, "request_deadline", "must be positive")
        require(self.retry_limit >= 0, "retry_limit", "cannot be negative")
        require(self.retry_base > 0, "retry_base", "must be positive")
        require(self.retry_factor >= 1.0, "retry_factor", "must be >= 1")
        require(0.0 <= self.retry_jitter <= 1.0, "retry_jitter", "must lie in [0, 1]")
        require(self.heartbeat_interval > 0, "heartbeat_interval", "must be positive")
        require(
            self.heartbeat_timeout > self.heartbeat_interval,
            "heartbeat_timeout",
            "must exceed the heartbeat interval",
        )
        require(self.breaker_threshold >= 1, "breaker_threshold", "need at least one")
        require(self.breaker_cooldown >= 0, "breaker_cooldown", "cannot be negative")


class CircuitBreaker:
    """Per-``(scheme, topology)`` consecutive-failure breaker.

    closed → (``threshold`` consecutive failures) → open → (after
    ``cooldown``) → one half-open probe → closed on success, straight
    back to open on failure.  Only failures the issue names —
    ``budget-exceeded`` and deadline timeouts — are recorded; typed
    request errors like ``unroutable`` never trip it.
    """

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.trips = 0

    def allow(self, now: float) -> bool:
        """Whether a primary-scheme dispatch may proceed right now
        (grants the single half-open probe after the cooldown)."""
        if self.state == "closed":
            return True
        if self.state == "open" and now - self.opened_at >= self.cooldown:
            self.state = "half-open"
            return True
        return False  # open and cooling, or probe already in flight

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            if self.state != "open":
                self.trips += 1
            self.state = "open"
            self.opened_at = now

    def snapshot(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
        }


@dataclass
class _Dispatch:
    """One admitted request's mutable bookkeeping (dispatcher-owned
    after admission)."""

    seq: int
    request: RouteRequest
    scheme: str  # canonical primary scheme name
    fallback: str | None  # canonical fallback name, topology-checked
    cache_key: CacheKey
    future: Future[RouteResponse]
    deadline_abs: float
    submitted_at: float
    attempts: int = 0
    retries: int = 0
    not_before: float = 0.0
    degraded: bool = False  # dispatching via the fallback scheme
    kill_at: float | None = None  # staged chaos SIGKILL
    chaos_done: bool = False
    resolved: bool = False
    terminal: RouteResponse | None = field(default=None, repr=False)


class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    def __init__(self, ctx: BaseContext, heartbeat_interval: float) -> None:
        self._ctx = ctx
        self._hb = heartbeat_interval
        self.busy: _Dispatch | None = None
        self.pipe_broken = False
        self.spawn()

    def spawn(self) -> None:
        parent, child = self._ctx.Pipe()
        self.conn = parent
        self.process = self._ctx.Process(
            target=worker_main, args=(child,), kwargs={"heartbeat_interval": self._hb},
            daemon=True,
        )
        self.process.start()
        child.close()  # parent keeps only its end; EOF detection works
        self.last_heartbeat = time.monotonic()
        self.pipe_broken = False

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except OSError:
            pass
        kill_process(self.process, hard=True)
        self.conn.close()


#: Breaker-visible error codes (see :class:`CircuitBreaker`).
_BREAKER_ERRORS = ("budget-exceeded", "timeout")


class RouteService:
    """The supervised, cached, degradable routing engine.

    Use as a context manager::

        with RouteService(ServiceConfig(workers=2)) as svc:
            fut = svc.submit(RouteRequest(1, "mesh:8x8", "dual-path",
                                          (0, 0), ((7, 7), (3, 4))))
            response = fut.result()
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = RoutePlanCache(self.config.cache_capacity)
        self._intake: queue.Queue[_Dispatch] = queue.Queue(maxsize=self.config.queue_bound)
        self._pending: list[_Dispatch] = []  # owned-by: dispatcher
        self._workers: list[_WorkerHandle] = []  # owned-by: dispatcher
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}  # owned-by: dispatcher
        self._lock = threading.Lock()  # counters + seq + lifecycle flags
        self._seq = 0  # guarded-by: _lock
        self._outstanding = 0  # guarded-by: _lock
        self._counters = {  # guarded-by: _lock
            "submitted": 0,
            "completed": 0,  # terminal responses of any kind
            "succeeded": 0,  # ok=True, degraded=False
            "degraded": 0,  # ok=True via fallback
            "failed": 0,  # ok=False of any code
            "shed": 0,
            "cache_served": 0,
            "retries": 0,
            "worker_crashes": 0,
            "hung_workers": 0,
            "worker_restarts": 0,
            "timeouts": 0,
            "breaker_short_circuits": 0,  # open breaker -> direct fallback
            "budget_fallbacks": 0,  # per-request budget-exceeded fallback
            "chaos_kills": 0,
            "chaos_delays": 0,
            "chaos_drops": 0,
            "chaos_stalls": 0,
        }
        self._errors: dict[str, int] = {}  # guarded-by: _lock
        self._started = False  # guarded-by: _lock
        self._stopped = False  # guarded-by: _lock
        self._dispatcher: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "RouteService":
        with self._lock:
            if self._started:
                return self
            self._started = True
        from ..parallel import _pool_context

        ctx = _pool_context()
        # happens-before: the pool is built before the dispatcher
        # thread exists, so this write cannot race it
        self._workers = [  # lint: ignore[dispatcher-ownership]
            _WorkerHandle(ctx, self.config.heartbeat_interval)
            for _ in range(self.config.workers)
        ]
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="route-dispatcher", daemon=True
        )
        self._dispatcher.start()
        return self

    def __enter__(self) -> "RouteService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Stop the dispatcher, resolve everything still queued with a
        typed ``shutdown`` error, and reap the workers."""
        with self._lock:
            if self._stopped or not self._started:
                self._stopped = True
                return
            self._stopped = True
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
        for handle in self._workers:
            handle.shutdown()

    # -- admission ----------------------------------------------------

    def submit(self, request: RouteRequest) -> Future[RouteResponse]:
        """Admit one request; the returned future resolves to exactly
        one terminal :class:`RouteResponse` (it never raises)."""
        future: Future[RouteResponse] = Future()
        now = time.monotonic()
        with self._lock:
            self._seq += 1
            seq = self._seq
            self._counters["submitted"] += 1
            stopped = self._stopped or not self._started
        if stopped:
            return self._admission_reject(
                future, request, "shutdown", "service is not running"
            )

        try:
            spec = registry.get(request.scheme)
        except registry.UnknownSchemeError as exc:
            return self._admission_reject(future, request, "unknown-scheme", str(exc))
        try:
            topology = _parse_topology(request.topology)
        except ValueError as exc:
            return self._admission_reject(future, request, "bad-request", str(exc))
        if not spec.supports(topology):
            return self._admission_reject(
                future,
                request,
                "unsupported-topology",
                f"{spec.name} is not defined on {topology}",
            )
        if not spec.routable:
            return self._admission_reject(
                future,
                request,
                "not-routable",
                f"{spec.name} produces no constructive route",
            )
        if not request.destinations:
            return self._admission_reject(
                future, request, "bad-request", "no destinations"
            )
        bad = [
            n
            for n in (request.source, *request.destinations)
            if not topology.is_node(n)
        ]
        if bad:
            return self._admission_reject(
                future, request, "bad-request", f"not a node: {bad[0]!r}"
            )

        key = route_key(
            request.topology, spec.name, request.source, request.destinations
        )
        cached = self.cache.get(key)
        if cached is not None:
            response = cached.replayed(request.request_id)
            self._account_terminal(response, cache_hit=True)
            future.set_result(response)
            return future

        fallback = spec.fallback_spec()
        fallback_name = (
            fallback.name
            if fallback is not None
            and fallback.routable
            and fallback.supports(topology)
            else None
        )
        deadline = request.deadline or self.config.request_deadline
        dispatch = _Dispatch(
            seq=seq,
            request=request,
            scheme=spec.name,
            fallback=fallback_name,
            cache_key=key,
            future=future,
            deadline_abs=now + deadline,
            submitted_at=now,
        )
        with self._lock:
            self._outstanding += 1
        try:
            self._intake.put_nowait(dispatch)
        except queue.Full:
            with self._lock:
                self._outstanding -= 1
                self._counters["shed"] += 1
            return self._admission_reject(
                future,
                request,
                "overloaded",
                f"intake queue full ({self.config.queue_bound} waiting)",
            )
        return future

    def route(self, request: RouteRequest, timeout: float | None = None) -> RouteResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(request).result(timeout=timeout)

    def _admission_reject(
        self,
        future: Future[RouteResponse],
        request: RouteRequest,
        code: str,
        detail: str,
    ) -> Future[RouteResponse]:
        response = RouteResponse(
            request_id=request.request_id, ok=False, error=code, detail=detail
        )
        self._account_terminal(response)
        future.set_result(response)
        return future

    # -- accounting ---------------------------------------------------

    def _account_terminal(self, response: RouteResponse, cache_hit: bool = False) -> None:
        with self._lock:
            self._counters["completed"] += 1
            if cache_hit:
                self._counters["cache_served"] += 1
            if response.ok:
                if response.degraded:
                    self._counters["degraded"] += 1
                else:
                    self._counters["succeeded"] += 1
            else:
                self._counters["failed"] += 1
                self._errors[response.error] = self._errors.get(response.error, 0) + 1

    def _resolve(self, dispatch: _Dispatch, response: RouteResponse) -> None:  # thread: dispatcher
        """The only place a dispatched request turns terminal — the
        ``resolved`` guard enforces exactly-once even if two failure
        paths fire in one tick."""
        if dispatch.resolved:
            return
        dispatch.resolved = True
        dispatch.terminal = response
        self._account_terminal(response)
        with self._lock:
            self._outstanding -= 1
        dispatch.future.set_result(response)

    def outstanding(self) -> int:
        """Requests admitted but not yet terminal."""
        with self._lock:
            return self._outstanding

    def drain(self, timeout: float | None = None) -> dict[str, Any]:
        """Wait until every admitted request is terminal, then return
        :meth:`report` (raises ``TimeoutError`` past ``timeout``)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.outstanding():
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"{self.outstanding()} requests still in flight after {timeout}s"
                )
            time.sleep(0.005)
        return self.report()

    def report(self) -> dict[str, Any]:
        """Counters + cache + breaker + worker snapshot (the drain
        report the CI chaos job asserts on).

        Safe from any thread: ``_breakers`` / ``_workers`` are only
        *read* here (the ownership lint checks mutations), and a
        slightly stale monitoring snapshot is acceptable."""
        with self._lock:
            counters = dict(self._counters)
            errors = dict(self._errors)
            outstanding = self._outstanding
        chaos = self.config.chaos
        return {
            "counters": counters,
            "errors": errors,
            "outstanding": outstanding,
            "cache": self.cache.stats(),
            "breakers": {
                f"{scheme}@{topo}": breaker.snapshot()
                for (scheme, topo), breaker in sorted(self._breakers.items())
            },
            "workers": [
                {"pid": handle.process.pid, "alive": handle.process.is_alive()}
                for handle in self._workers
            ],
            "chaos": None if chaos is None else chaos.to_json(),
        }

    # -- dispatcher ---------------------------------------------------

    def _breaker(self, dispatch: _Dispatch) -> CircuitBreaker:  # thread: dispatcher
        key = (dispatch.scheme, dispatch.request.topology)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config.breaker_threshold, self.config.breaker_cooldown
            )
            self._breakers[key] = breaker
        return breaker

    def _requeue_or_fail(  # thread: dispatcher
        self, dispatch: _Dispatch, now: float, code: str, detail: str
    ) -> None:
        """Crash/hang recovery: requeue with deadline-capped backoff if
        the retry budget and the deadline both allow, else terminal."""
        remaining = dispatch.deadline_abs - now
        if dispatch.retries < self.config.retry_limit and remaining > 0:
            dispatch.retries += 1
            delay = retry_delay(
                dispatch.retries - 1,
                base=self.config.retry_base,
                factor=self.config.retry_factor,
                jitter=self.config.retry_jitter,
                seed=self.config.seed,
                request_id=dispatch.seq,
                remaining=remaining,
            )
            dispatch.not_before = now + delay
            dispatch.kill_at = None
            with self._lock:
                self._counters["retries"] += 1
            self._pending.append(dispatch)
            return
        self._resolve(
            dispatch,
            RouteResponse(
                request_id=dispatch.request.request_id,
                ok=False,
                error=code,
                detail=detail,
                attempts=dispatch.attempts,
            ),
        )

    def _reclaim(self, handle: _WorkerHandle, now: float, *, hung: bool) -> None:  # thread: dispatcher
        """A worker died or hung: recycle it and recover its request."""
        kill_process(handle.process, hard=True)
        exitcode = handle.process.exitcode
        handle.conn.close()
        dispatch = handle.busy
        handle.busy = None
        with self._lock:
            self._counters["hung_workers" if hung else "worker_crashes"] += 1
            self._counters["worker_restarts"] += 1
        handle.spawn()
        if dispatch is not None and not dispatch.resolved:
            detail = (
                f"worker hung (no heartbeat for {self.config.heartbeat_timeout:g}s)"
                if hung
                else f"worker died (exit code {exitcode})"
            )
            self._requeue_or_fail(dispatch, now, "worker-crashed", detail)

    def _on_result(  # thread: dispatcher
        self,
        handle: _WorkerHandle,
        dispatch: _Dispatch,
        outcome: tuple[bool, dict[str, Any]],
    ) -> None:
        now = time.monotonic()
        ok, payload = outcome
        breaker = self._breaker(dispatch)
        if ok:
            if not dispatch.degraded:
                breaker.record_success()
            response = RouteResponse(
                request_id=dispatch.request.request_id,
                ok=True,
                scheme=payload["scheme"],
                degraded=dispatch.degraded,
                traffic=payload["traffic"],
                max_hops=payload["max_hops"],
                attempts=dispatch.attempts,
            )
            if not dispatch.degraded:
                # degraded plans are never cached: once the breaker
                # closes, fresh requests should reach the primary again
                self.cache.put(dispatch.cache_key, response)
            self._resolve(dispatch, response)
            return
        code, detail = payload["error"], payload["detail"]
        if not dispatch.degraded and code in _BREAKER_ERRORS:
            breaker.record_failure(now)
        if (
            code == "budget-exceeded"
            and not dispatch.degraded
            and dispatch.fallback is not None
        ):
            # per-request graceful degradation: retry immediately on
            # the declared fallback scheme
            dispatch.degraded = True
            dispatch.not_before = now
            with self._lock:
                self._counters["budget_fallbacks"] += 1
            self._pending.append(dispatch)
            return
        self._resolve(
            dispatch,
            RouteResponse(
                request_id=dispatch.request.request_id,
                ok=False,
                error=code,
                detail=detail,
                attempts=dispatch.attempts,
            ),
        )

    def _send_job(self, handle: _WorkerHandle, dispatch: _Dispatch, now: float) -> bool:  # thread: dispatcher
        request = dispatch.request
        job: dict[str, Any] = {
            "seq": dispatch.seq,
            "topology": request.topology,
            "scheme": dispatch.fallback if dispatch.degraded else dispatch.scheme,
            "source": request.source,
            "destinations": request.destinations,
            "budget": request.budget,
        }
        plan = self.config.chaos
        action = None
        if plan is not None and not dispatch.chaos_done:
            action = plan.action(dispatch.seq, dispatch.attempts)
            dispatch.chaos_done = True
            if action == "kill":
                job["hold_s"] = plan.delay_s
                dispatch.kill_at = now + plan.delay_s / 2
            elif action == "delay":
                job["delay_s"] = plan.delay_s
            elif action == "drop":
                job["drop"] = True
            elif action == "stall":
                job["stall"] = True
            if action is not None:
                with self._lock:
                    self._counters[f"chaos_{action}s"] += 1
        try:
            handle.conn.send(job)
        except OSError:
            handle.pipe_broken = True
            dispatch.kill_at = None
            self._pending.insert(0, dispatch)
            return False
        dispatch.attempts += 1
        handle.busy = dispatch
        return True

    def _dispatch_loop(self) -> None:  # thread: dispatcher
        try:
            self._dispatch_ticks()
        except Exception:
            # a dispatcher bug must not leave futures hanging forever:
            # flip to stopped and fall through to terminal resolution
            with self._lock:
                self._stopped = True
        # shutdown: everything still admitted resolves `shutdown`
        while True:
            try:
                self._pending.append(self._intake.get_nowait())
            except queue.Empty:
                break
        for handle in self._workers:
            dispatch = handle.busy
            handle.busy = None
            if dispatch is not None:
                self._resolve(
                    dispatch,
                    RouteResponse(
                        request_id=dispatch.request.request_id,
                        ok=False,
                        error="shutdown",
                        detail="service stopped mid-request",
                        attempts=dispatch.attempts,
                    ),
                )
        for dispatch in self._pending:
            self._resolve(
                dispatch,
                RouteResponse(
                    request_id=dispatch.request.request_id,
                    ok=False,
                    error="shutdown",
                    detail="service stopped with the request queued",
                    attempts=dispatch.attempts,
                ),
            )
        self._pending = []

    def _dispatch_ticks(self) -> None:  # thread: dispatcher
        cfg = self.config
        while True:
            with self._lock:
                stopping = self._stopped
            now = time.monotonic()

            # 1. pull admissions into the dispatcher-owned pending list
            while True:
                try:
                    self._pending.append(self._intake.get_nowait())
                except queue.Empty:
                    break

            if stopping:
                break

            # 2. drain worker pipes (results + heartbeats)
            for handle in self._workers:
                try:
                    while handle.conn.poll():
                        message = handle.conn.recv()
                        if message[0] == "hb":
                            handle.last_heartbeat = now
                        elif message[0] == "res":
                            handle.last_heartbeat = now
                            dispatch = handle.busy
                            if (
                                dispatch is not None
                                and dispatch.seq == message[1]
                            ):
                                handle.busy = None
                                self._on_result(handle, dispatch, message[2])
                except (EOFError, OSError):
                    handle.pipe_broken = True

            # 3. staged chaos kills (mid-request SIGKILL)
            for handle in self._workers:
                dispatch = handle.busy
                if (
                    dispatch is not None
                    and dispatch.kill_at is not None
                    and now >= dispatch.kill_at
                ):
                    dispatch.kill_at = None
                    kill_process(handle.process, hard=True)

            # 4. worker health: death, then hangs
            for handle in self._workers:
                if handle.pipe_broken or not handle.process.is_alive():
                    self._reclaim(handle, now, hung=False)
                elif now - handle.last_heartbeat > cfg.heartbeat_timeout:
                    self._reclaim(handle, now, hung=True)

            # 5. per-request deadlines — in flight and still queued
            for handle in self._workers:
                dispatch = handle.busy
                if dispatch is not None and now > dispatch.deadline_abs:
                    handle.busy = None
                    if not dispatch.degraded:
                        self._breaker(dispatch).record_failure(now)
                    with self._lock:
                        self._counters["timeouts"] += 1
                        self._counters["worker_restarts"] += 1
                    self._resolve(
                        dispatch,
                        RouteResponse(
                            request_id=dispatch.request.request_id,
                            ok=False,
                            error="timeout",
                            detail=f"deadline expired after "
                            f"{now - dispatch.submitted_at:.3f}s",
                            attempts=dispatch.attempts,
                        ),
                    )
                    # the worker is still grinding on the stale job:
                    # recycle it rather than poison the next request
                    kill_process(handle.process, hard=True)
                    handle.conn.close()
                    handle.spawn()
            still_pending = []
            for dispatch in self._pending:
                if now > dispatch.deadline_abs:
                    with self._lock:
                        self._counters["timeouts"] += 1
                    self._resolve(
                        dispatch,
                        RouteResponse(
                            request_id=dispatch.request.request_id,
                            ok=False,
                            error="timeout",
                            detail="deadline expired before dispatch",
                            attempts=dispatch.attempts,
                        ),
                    )
                else:
                    still_pending.append(dispatch)
            self._pending = still_pending

            # 6. dispatch to idle workers.  Cache replays and
            # circuit-open rejections cost no worker, so each idle
            # worker keeps pulling until it lands a real job (else a
            # burst of cache hits would drain at one per worker per
            # tick instead of resolving immediately).
            for handle in self._workers:
                while handle.busy is None and not handle.pipe_broken:
                    index = next(
                        (
                            i
                            for i, d in enumerate(self._pending)
                            if d.not_before <= now
                        ),
                        None,
                    )
                    if index is None:
                        break
                    dispatch = self._pending.pop(index)
                    cached = self.cache.peek(dispatch.cache_key)
                    if cached is not None:
                        self._account_cache_replay(dispatch, cached)
                        continue
                    if not dispatch.degraded:
                        breaker = self._breaker(dispatch)
                        if not breaker.allow(now):
                            if dispatch.fallback is not None:
                                dispatch.degraded = True
                                with self._lock:
                                    self._counters["breaker_short_circuits"] += 1
                            else:
                                self._resolve(
                                    dispatch,
                                    RouteResponse(
                                        request_id=dispatch.request.request_id,
                                        ok=False,
                                        error="circuit-open",
                                        detail=f"{dispatch.scheme} is failing on "
                                        f"{dispatch.request.topology} and declares "
                                        "no fallback",
                                        attempts=dispatch.attempts,
                                    ),
                                )
                                continue
                    self._send_job(handle, dispatch, now)

            time.sleep(0.002)

    def _account_cache_replay(self, dispatch: _Dispatch, cached: RouteResponse) -> None:  # thread: dispatcher
        response = cached.replayed(dispatch.request.request_id)
        dispatch.resolved = True
        dispatch.terminal = response
        self._account_terminal(response, cache_hit=True)
        with self._lock:
            self._outstanding -= 1
        dispatch.future.set_result(response)
