"""Tree multicast under virtual cut-through — the ref. [21] router
style (Lan/Ni/Esfahanian's VLSI multicast router, §1.2).

Before wormhole routing, multicast trees were safe: a virtual
cut-through router replicates the message at branch nodes *after
buffering it*, so each branch proceeds independently and a blocked
branch never stalls its siblings — no lockstep, no cross-branch channel
dependencies, no Fig. 6.1 deadlock.  The price is store-and-forward
behaviour at every replication point.

Chapter 6's whole premise is that this approach "does not carry over"
to wormhole switching; this model quantifies the comparison: VCT trees
are deadlock-free out of the box but pay full-message buffering delay
per branch level, while the Chapter 6 wormhole schemes avoid both the
deadlock and the buffering.
"""

from __future__ import annotations

from collections import defaultdict

from .network import WormholeNetwork
from .vct import inject_vct_path


def tree_chains(arcs, source):
    """Decompose a multicast tree into root/branch-to-branch chains:
    maximal paths whose interior nodes have exactly one child."""
    children = defaultdict(list)
    for u, v in arcs:
        children[u].append(v)
    chains = []

    def walk(start):
        for child in children[start]:
            chain = [start, child]
            node = child
            while len(children[node]) == 1:
                node = children[node][0]
                chain.append(node)
            chains.append(chain)
            if children[node]:
                walk(node)

    walk(source)
    return chains


class VCTTreeMulticast:
    """Drives one multicast tree as independent VCT chain messages:
    each chain is launched when the full message has been buffered at
    its head (the replication rule of a cut-through multicast router)."""

    def __init__(self, net: WormholeNetwork, message_id: int, arcs, source, destinations):
        self.net = net
        self.message_id = message_id
        self.dests = set(destinations)
        self.chains_by_head = defaultdict(list)
        for chain in tree_chains(list(arcs), source):
            self.chains_by_head[chain[0]].append(chain)
        self.source = source
        self.injected_at = net.env.now

    def start(self) -> None:
        self._launch_from(self.source)

    def _launch_from(self, node) -> None:
        for chain in self.chains_by_head.get(node, ()):  # one VCT worm per chain
            tail_node = chain[-1]
            dests_on_chain = (set(chain[1:]) & self.dests) | {tail_node}
            worm = inject_vct_path(
                self.net,
                self.message_id,
                chain,
                dests_on_chain & self.dests,
            )
            # latency is measured from the original injection, not from
            # this chain's replication time
            worm.injected_at = self.injected_at
            # when the tail arrives at the chain end, replicate onward
            worm.on_finished = lambda node=tail_node: self._launch_from(node)


def inject_vct_tree(
    net: WormholeNetwork, message_id: int, arcs, source, destinations
) -> VCTTreeMulticast:
    """Inject a multicast tree as buffered-replication VCT chains."""
    mc = VCTTreeMulticast(net, message_id, arcs, source, destinations)
    mc.start()
    return mc
