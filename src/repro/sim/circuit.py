"""Circuit switching (§2.2.3).

A short probe (``L_c`` bytes) travels from source to destination,
reserving each channel it crosses; when the full circuit is
established, the message streams over it with no further routing cost
and the circuit is torn down behind the tail.  If the probe meets a
busy channel it *holds* the partial circuit and waits (the simplest of
the §2.2.3 reestablishment protocols) — which makes circuit switching
share wormhole routing's chained-blocking behaviour under load, with
the difference that the reservation unit is the whole path rather than
a sliding worm of F channels.

Deadlock characteristics therefore mirror wormhole routing's (§2.3.4:
"in circuit switching and wormhole routing, channels are the critical
resources"), and the same Hamiltonian-labeling path routing keeps the
probe's channel dependencies acyclic.
"""

from __future__ import annotations

from collections.abc import Sequence

from .network import WormholeNetwork


class CircuitMessage:
    """One circuit-switched message: probe, transfer, teardown."""

    __slots__ = (
        "net", "env", "message_id", "nodes", "channels", "dests",
        "injected_at", "idx", "probe_hop_time",
    )

    def __init__(self, net: WormholeNetwork, message_id: int, nodes, channels, dests):
        self.net = net
        self.env = net.env
        self.message_id = message_id
        self.nodes = nodes
        self.channels = channels
        self.dests = dests
        self.injected_at = net.env.now
        self.idx = 0
        cfg = net.config
        # probe time per hop: L_c / B, with L_c one flit by default
        self.probe_hop_time = cfg.flit_time

    def start(self) -> None:
        if not self.channels:
            self.net.finish(self)
            return
        self._try_reserve()

    def _try_reserve(self) -> None:
        ch = self.channels[self.idx]
        if not ch.free:
            ch.waiters.append(self._try_reserve)
            return
        ch.acquire()
        self.idx += 1
        if self.idx == len(self.channels):
            # circuit established once the probe reaches the destination
            self.env.schedule(self.probe_hop_time, self._transfer)
        else:
            self.env.schedule(self.probe_hop_time, self._try_reserve)

    def _transfer(self) -> None:
        # the whole message streams over the reserved circuit: the tail
        # leaves the source after L/B and reaches any point of the
        # circuit a propagation (flit) time later; we release channels
        # and deliver as the tail passes.
        transfer = self.net.config.message_time
        tf = self.net.config.flit_time
        for i in range(len(self.channels)):
            self.env.schedule(transfer + (i + 1) * tf, self._release, i)
        self.env.schedule(transfer + len(self.channels) * tf, self._finished)

    def _release(self, i: int) -> None:
        self.net.release(self.channels[i])
        head = self.nodes[i + 1]
        if head in self.dests:
            self.net.deliver(self.message_id, head, self.injected_at)

    def _finished(self) -> None:
        self.net.finish(self)


def inject_circuit_path(
    net: WormholeNetwork,
    message_id: int,
    nodes: Sequence,
    destinations: set,
    channel_key=lambda u, v: (u, v),
    capacity: int | None = None,
) -> CircuitMessage:
    """Inject a circuit-switched message along ``nodes``."""
    chans = [net.channel(channel_key(u, v), capacity) for u, v in zip(nodes, nodes[1:])]
    msg = CircuitMessage(net, message_id, list(nodes), chans, destinations)
    net.active_worms += 1
    msg.start()
    return msg
