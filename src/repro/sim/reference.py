"""Reference flit-level wormhole network model (§2.2.4, §7.2).

This is the authoritative coroutine/callback model: one worm object per
message stepping through the event kernel.  It is the parity baseline
for the vectorized structure-of-arrays engine in
:mod:`repro.sim.dense`, exactly as :mod:`repro.exact.reference` and
:mod:`repro.labeling.reference` anchor their optimised counterparts.
(:mod:`repro.sim.network` re-exports these names for compatibility.)

Messages are *worms*: the header acquires one channel per flit time and
the body follows in a pipeline; a blocked worm stays in the network,
holding every channel it has acquired (no intermediate buffering).
Channels are released as the tail passes — with F flits, the channel
entered i-th is released once the header (or, after arrival, the
destination's consumption) has advanced F more steps.

Two worm shapes:

* :class:`PathWorm` — the multicast path/star model: one header, a
  linear channel sequence, intermediate destinations latch a copy as
  the worm passes (delivery is recorded when the tail passes them).
* :class:`TreeWorm` — the lockstep multicast tree of §6.1: the frontier
  of branch headers advances only when *every* channel of the next
  depth level is free (the nCUBE-2 rule: all required channels before
  transmission on any); blockage of any branch stalls the whole tree.
  Two such trees can deadlock (Fig. 6.1/6.4) — the simulator detects
  this as blocked worms with an empty event calendar.

Channel identity is an arbitrary hashable key, so callers can model
double channels either as one pooled channel of capacity 2 (path
routing on a double-channel network) or as per-subnetwork copies
(``(u, v, quadrant)`` for the double-channel X-first tree).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Hashable, Sequence

from .config import SimConfig
from .kernel import Environment


class Channel:
    """A physical (or virtual) channel with a FIFO waiter queue."""

    __slots__ = ("key", "capacity", "in_use", "waiters")

    def __init__(self, key: Hashable, capacity: int = 1):
        self.key = key
        self.capacity = capacity
        self.in_use = 0
        self.waiters: deque = deque()

    @property
    def free(self) -> bool:
        return self.in_use < self.capacity

    def acquire(self) -> None:
        assert self.in_use < self.capacity
        self.in_use += 1


@dataclass(slots=True)
class Delivery:
    """One destination's receipt of one multicast message."""

    message_id: int
    destination: Hashable
    injected_at: float
    delivered_at: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.injected_at


class WormholeNetwork:
    """The shared channel state plus bookkeeping for worms in flight.

    The worm classes are class attributes (bound after their
    definitions below) so a subclass can substitute fault-aware worms
    without re-implementing the injection methods —
    :class:`repro.sim.faults.FaultyWormholeNetwork` does exactly that.
    """

    __slots__ = ("env", "config", "channels", "active_worms", "total_worms", "deliveries", "_blocked")

    #: worm classes used by the inject_* methods (overridable).
    path_worm_cls: type
    adaptive_worm_cls: type
    tree_worm_cls: type

    def __init__(self, env: Environment, config: SimConfig):
        self.env = env
        self.config = config
        self.channels: dict = {}
        self.active_worms = 0
        self.total_worms = 0
        self.deliveries: list[Delivery] = []
        self._blocked: list = []

    def channel(self, key: Hashable, capacity: int | None = None) -> Channel:
        ch = self.channels.get(key)
        if ch is None:
            ch = Channel(key, capacity or self.config.channels_per_link)
            self.channels[key] = ch
        return ch

    def release(self, ch: Channel) -> None:
        """Release one unit of the channel and wake every waiter (in
        FIFO order).  Waiters re-attempt acquisition; a waiter that
        still cannot proceed re-queues itself, so a freed slot is never
        stranded behind a blocked multi-channel (tree) waiter."""
        ch.in_use -= 1
        if ch.waiters and ch.in_use < ch.capacity:
            waiters = list(ch.waiters)
            ch.waiters.clear()
            for retry in waiters:
                self.env.schedule(0.0, retry)

    def deliver(self, message_id: int, dest, injected_at: float) -> None:
        self.deliveries.append(
            Delivery(message_id, dest, injected_at, self.env.now)
        )

    # ------------------------------------------------------------------

    def inject_path(
        self,
        message_id: int,
        nodes: Sequence,
        destinations: set,
        channel_key=None,
        capacity: int | None = None,
        flits: int | None = None,
        route_key=None,
    ) -> "PathWorm":
        """Inject a path worm following ``nodes``; members of
        ``destinations`` latch a copy as the tail passes them.
        ``channel_key`` maps a hop to its channel identity (default:
        the ``(u, v)`` pair itself); ``flits`` overrides the message
        length (header modelling).  ``route_key`` is a hashable token
        that, together with ``(nodes, destinations, capacity)``, fully
        determines every channel identity — engines with a route cache
        may memoize on it; this scalar model ignores it."""
        channels = self.channels
        cap = capacity or self.config.channels_per_link
        chans = []
        for u, v in zip(nodes, nodes[1:]):
            key = (u, v) if channel_key is None else channel_key(u, v)
            ch = channels.get(key)
            if ch is None:
                ch = channels[key] = Channel(key, cap)
            chans.append(ch)
        worm = self.path_worm_cls(self, message_id, list(nodes), chans, destinations)
        if flits is not None:
            worm.flits = flits
        self.active_worms += 1
        self.total_worms += 1
        worm.start()
        return worm

    def inject_adaptive_path(
        self,
        message_id: int,
        source,
        destinations: Sequence,
        labeling,
        channel_key=lambda u, v: (u, v),
        capacity: int | None = None,
    ) -> "AdaptivePathWorm":
        """Inject a path worm that chooses its next channel *at each
        hop*: any label-monotone profitable neighbor with a free channel
        is acceptable, preferring the deterministic R choice (the §8.2
        minimal-adaptive extension).  ``destinations`` must be
        label-sorted in travel order (as produced by
        ``split_high_low``)."""
        worm = self.adaptive_worm_cls(
            self, message_id, source, list(destinations), labeling, channel_key, capacity
        )
        self.active_worms += 1
        self.total_worms += 1
        worm.start()
        return worm

    def inject_tree(
        self,
        message_id: int,
        levels: Sequence[Sequence],
        channel_key=lambda arc: (arc[0], arc[1]),
        capacity: int | None = None,
        flits: int | None = None,
    ) -> "TreeWorm":
        """Inject a lockstep tree worm.  ``levels[r]`` holds the arcs at
        depth r+1 as ``(u, v, *tags)`` tuples; per-level destination
        sets are supplied via ``TreeWorm.dest_levels`` by the caller."""
        chan_levels = [
            [self.channel(channel_key(arc), capacity) for arc in level]
            for level in levels
        ]
        head_levels = [[arc[1] for arc in level] for level in levels]
        worm = self.tree_worm_cls(self, message_id, chan_levels, head_levels)
        if flits is not None:
            worm.flits = flits
        self.active_worms += 1
        self.total_worms += 1
        worm.start()
        return worm

    def finish(self, worm) -> None:
        self.active_worms -= 1

    def run_to_completion(self, until: float | None = None) -> bool:
        """Run the calendar dry.  Returns True if every worm finished;
        False indicates deadlock (blocked worms, no pending events)."""
        self.env.run(until)
        return self.active_worms == 0


class PathWorm:
    """A single-path worm (see module docstring for the timing rules)."""

    __slots__ = (
        "net", "env", "message_id", "nodes", "channels", "num_channels",
        "dests", "injected_at", "idx", "flits", "tf", "blocked_on",
        "_advance", "_arrive", "_rel", "_sched",
    )

    def __init__(self, net: WormholeNetwork, message_id: int, nodes, channels, dests):
        self.net = net
        self.env = net.env
        self.message_id = message_id
        self.nodes = nodes
        self.channels = channels
        self.num_channels = len(channels)
        self.dests = dests
        self.injected_at = net.env.now
        self.idx = 0  # next channel index to acquire
        self.flits = net.config.flits_per_message
        self.tf = net.config.flit_time
        self.blocked_on: Channel | None = None
        # prebound callbacks: the advance loop schedules these once per
        # hop/flit, and binding them here avoids a method-object
        # allocation per event
        self._advance = self._try_advance
        self._arrive = self._arrived
        self._rel = self._release
        self._sched = net.env.schedule

    def start(self) -> None:
        if not self.channels:  # degenerate: source-only path
            self.net.finish(self)
            return
        self._try_advance()

    def _try_advance(self) -> None:
        self.blocked_on = None
        i = self.idx
        ch = self.channels[i]
        if ch.in_use >= ch.capacity:
            self.blocked_on = ch
            ch.waiters.append(self._advance)
            return
        ch.in_use += 1
        self.idx = i + 1
        j = i - self.flits
        if j >= 0:
            self._release(j)
        self._sched(self.tf, self._arrive)

    def _arrived(self) -> None:
        if self.idx < self.num_channels:
            self._try_advance()
            return
        # header consumed at the final node; remaining flits drain at
        # one per flit time, releasing held channels oldest-first.
        D = self.num_channels
        F = self.flits
        sched = self._sched
        tf = self.tf
        for i in range(max(0, D - F), D):
            sched((i + F - D) * tf, self._rel, i)
        sched((F - 1) * tf, self._finished)

    def _release(self, i: int) -> None:
        self.net.release(self.channels[i])
        head = self.nodes[i + 1]
        if head in self.dests:
            self.net.deliver(self.message_id, head, self.injected_at)

    def _finished(self) -> None:
        self.net.finish(self)


class AdaptivePathWorm:
    """A path worm with per-hop adaptive channel selection (§8.2).

    At each node the admissible next hops are the label-monotone
    candidates toward the next destination
    (:meth:`repro.labeling.base.Labeling.route_candidates`); the worm
    takes the most-preferred candidate whose channel is free, and only
    blocks — on the deterministic R choice — when all are busy.
    Monotonicity keeps every dependency inside the acyclic high/low
    subnetwork, so adaptivity does not compromise deadlock freedom.
    Release and delivery timing mirror :class:`PathWorm`.
    """

    __slots__ = (
        "net", "env", "message_id", "labeling", "channel_key", "capacity",
        "nodes", "channels", "queue", "dests", "injected_at", "flits", "tf",
        "_advance", "_arrive", "_rel",
    )

    def __init__(self, net, message_id, source, dest_queue, labeling, channel_key, capacity):
        self.net = net
        self.env = net.env
        self.message_id = message_id
        self.labeling = labeling
        self.channel_key = channel_key
        self.capacity = capacity
        self.nodes = [source]
        self.channels: list[Channel] = []
        self.queue = list(dest_queue)
        self.dests = set(dest_queue)
        self.injected_at = net.env.now
        self.flits = net.config.flits_per_message
        self.tf = net.config.flit_time
        self._advance = self._try_advance
        self._arrive = self._arrived
        self._rel = self._release

    def start(self) -> None:
        self._pop_reached()
        if not self.queue:
            # degenerate: the source is the only stop
            self.net.finish(self)
            return
        self._try_advance()

    def _pop_reached(self) -> None:
        while self.queue and self.queue[0] == self.nodes[-1]:
            self.queue.pop(0)

    def _try_advance(self) -> None:
        cur = self.nodes[-1]
        target = self.queue[0]
        candidates = self.labeling.route_candidates(cur, target)
        chosen = None
        for p in candidates:
            ch = self.net.channel(self.channel_key(cur, p), self.capacity)
            if ch.free:
                chosen = (p, ch)
                break
        if chosen is None:
            # block on the deterministic R choice
            ch = self.net.channel(self.channel_key(cur, candidates[0]), self.capacity)
            ch.waiters.append(self._advance)
            return
        nxt, ch = chosen
        ch.acquire()
        self.channels.append(ch)
        self.nodes.append(nxt)
        i = len(self.channels) - 1
        if i - self.flits >= 0:
            self._release(i - self.flits)
        self.env.schedule(self.tf, self._arrive)

    def _arrived(self) -> None:
        self._pop_reached()
        if self.queue:
            self._try_advance()
            return
        D = len(self.channels)
        F = self.flits
        for i in range(max(0, D - F), D):
            self.env.schedule((i + F - D) * self.tf, self._rel, i)
        self.env.schedule((F - 1) * self.tf, self._finished)

    def _release(self, i: int) -> None:
        self.net.release(self.channels[i])
        head = self.nodes[i + 1]
        if head in self.dests:
            self.net.deliver(self.message_id, head, self.injected_at)

    def _finished(self) -> None:
        self.net.finish(self)


class TreeWorm:
    """A lockstep tree worm: all channels of the next depth level must
    be free before the frontier advances (§6.1)."""

    __slots__ = (
        "net", "env", "message_id", "chan_levels", "head_levels",
        "dest_levels", "injected_at", "k", "flits", "tf",
        "_tick", "_done", "_rel",
    )

    def __init__(self, net: WormholeNetwork, message_id: int, chan_levels, head_levels):
        self.net = net
        self.env = net.env
        self.message_id = message_id
        self.chan_levels = chan_levels
        self.head_levels = head_levels
        #: per-level sets of destination nodes; filled by the caller
        self.dest_levels: list[set] = [set() for _ in chan_levels]
        self.injected_at = net.env.now
        self.k = 0  # next level to acquire
        self.flits = net.config.flits_per_message
        self.tf = net.config.flit_time
        self._tick = self._try_tick
        self._done = self._tick_done
        self._rel = self._release_level

    def start(self) -> None:
        if not self.chan_levels:
            self.net.finish(self)
            return
        self._try_tick()

    def _try_tick(self) -> None:
        level = self.chan_levels[self.k]
        for ch in level:
            if not ch.free:
                ch.waiters.append(self._tick)
                return
        for ch in level:
            ch.acquire()
        k = self.k
        self.k += 1
        if k - self.flits >= 0:
            self._release_level(k - self.flits)
        self.env.schedule(self.tf, self._done)

    def _tick_done(self) -> None:
        if self.k < len(self.chan_levels):
            self._try_tick()
            return
        L = len(self.chan_levels)
        F = self.flits
        for idx in range(max(0, L - F), L):
            self.env.schedule((idx + F - L) * self.tf, self._rel, idx)
        self.env.schedule((L - 1 + F - L) * self.tf, self._finished)

    def _release_level(self, idx: int) -> None:
        for ch in self.chan_levels[idx]:
            self.net.release(ch)
        for dest in self.dest_levels[idx]:
            self.net.deliver(self.message_id, dest, self.injected_at)

    def _finished(self) -> None:
        self.net.finish(self)


WormholeNetwork.path_worm_cls = PathWorm
WormholeNetwork.adaptive_worm_cls = AdaptivePathWorm
WormholeNetwork.tree_worm_cls = TreeWorm
