"""Tests for VCT-tree multicast (ref. [21] style) and the §2.1
topology property profiles."""

from __future__ import annotations

import random

import pytest

from repro.heuristics import xfirst_route
from repro.models import MulticastRequest, random_multicast
from repro.sim import (
    Environment,
    SimConfig,
    WormholeNetwork,
    inject_vct_tree,
    run_dynamic,
    run_static_scenario,
    tree_chains,
)
from repro.topology import Hypercube, KAryNCube, Mesh2D, Mesh3D
from repro.topology.properties import average_distance, bisection_width, profile


class TestTreeChains:
    def test_single_path_is_one_chain(self):
        arcs = [("a", "b"), ("b", "c"), ("c", "d")]
        chains = tree_chains(arcs, "a")
        assert chains == [["a", "b", "c", "d"]]

    def test_branching_splits_chains(self):
        arcs = [("r", "a"), ("r", "b"), ("a", "a1"), ("a", "a2")]
        chains = tree_chains(arcs, "r")
        assert sorted(map(tuple, chains)) == sorted(
            [("r", "a"), ("r", "b"), ("a", "a1"), ("a", "a2")]
        )

    def test_chain_decomposition_covers_all_arcs(self):
        m = Mesh2D(8, 8)
        rng = random.Random(1)
        for _ in range(10):
            req = random_multicast(m, 8, rng)
            tree = xfirst_route(req)
            chains = tree_chains(list(tree.arcs), req.source)
            covered = [
                arc for chain in chains for arc in zip(chain, chain[1:])
            ]
            assert sorted(covered) == sorted(tree.arcs)


class TestVCTTreeMulticast:
    def test_delivers_everything(self):
        m = Mesh2D(8, 8)
        rng = random.Random(2)
        for _ in range(10):
            req = random_multicast(m, 8, rng)
            tree = xfirst_route(req)
            env = Environment()
            net = WormholeNetwork(env, SimConfig())
            inject_vct_tree(net, 1, tree.arcs, req.source, req.destinations)
            assert net.run_to_completion()
            assert {d.destination for d in net.deliveries} == set(req.destinations)

    def test_fig_6_1_scenario_completes(self):
        """The buffered-replication tree does NOT deadlock on the
        Fig. 6.1 pattern — the historically safe design the wormhole
        generation abandoned."""
        cube = Hypercube(3)
        reqs = [
            MulticastRequest(cube, 0, tuple(v for v in cube.nodes() if v != 0)),
            MulticastRequest(cube, 1, tuple(v for v in cube.nodes() if v != 1)),
        ]
        res = run_static_scenario(cube, "vct-tree", reqs)
        assert res.completed
        assert res.deliveries == 14

    def test_fig_6_4_scenario_completes(self):
        mesh = Mesh2D(4, 3)
        reqs = [
            MulticastRequest(mesh, (1, 1), ((0, 2), (3, 1))),
            MulticastRequest(mesh, (2, 1), ((0, 1), (3, 0))),
        ]
        res = run_static_scenario(mesh, "vct-tree", reqs)
        assert res.completed

    def test_dynamic_run(self):
        m = Mesh2D(8, 8)
        cfg = SimConfig(num_messages=200, num_destinations=6, seed=3)
        r = run_dynamic(m, "vct-tree", cfg)
        assert r.deliveries == 200 * 6

    def test_branch_buffering_adds_latency(self):
        """A destination behind a replication point is delayed by the
        full-message buffering there, unlike a pure path worm."""
        m = Mesh2D(8, 8)
        cfg = SimConfig()
        # tree: source (0,0), branch at (3,0) toward (3,3) and (6,0)
        req = MulticastRequest(m, (0, 0), ((3, 3), (6, 0)))
        tree = xfirst_route(req)
        env = Environment()
        net = WormholeNetwork(env, cfg)
        inject_vct_tree(net, 1, tree.arcs, req.source, req.destinations)
        net.run_to_completion()
        by_dest = {d.destination: d.latency for d in net.deliveries}
        # path-worm floor for (3,3): 6 hops + F-1
        floor = (6 + cfg.flits_per_message - 1) * cfg.flit_time
        assert by_dest[(3, 3)] > floor


class TestTopologyProfiles:
    def test_mesh_profile(self):
        p = profile(Mesh2D(8, 8), "mesh")
        assert p.num_nodes == 64
        assert p.num_links == 112
        assert (p.min_degree, p.max_degree) == (2, 4)
        assert not p.is_regular
        assert p.diameter == 14
        assert p.bisection_width == 8

    def test_cube_profile(self):
        p = profile(Hypercube(6))
        assert p.is_regular and p.max_degree == 6
        assert p.diameter == 6
        assert p.bisection_width == 32
        assert p.average_distance == pytest.approx(3.0476, abs=0.01)

    def test_bisection_widths(self):
        assert bisection_width(Mesh2D(8, 4)) == 4
        assert bisection_width(Mesh3D(4, 4, 4)) == 16
        assert bisection_width(Hypercube(5)) == 16
        assert bisection_width(KAryNCube(8, 2)) == 16

    def test_average_distance_matches_bruteforce(self):
        m = Mesh2D(4, 3)
        nodes = list(m.nodes())
        total = sum(m.distance(u, v) for u in nodes for v in nodes if u != v)
        expected = total / (len(nodes) * (len(nodes) - 1))
        assert average_distance(m) == pytest.approx(expected)

    def test_channel_width_argument(self):
        """§2.1.2: at fixed bisection density the 2D mesh's channels are
        wider than the hypercube's (same N)."""
        mesh = profile(Mesh2D(8, 8))
        cube = profile(Hypercube(6))
        assert (
            mesh.channel_width_at_fixed_bisection_density()
            > cube.channel_width_at_fixed_bisection_density()
        )
