"""Tests for Hamiltonian labelings and cycle mappings (§5.1, §6.2.2, §6.3)."""

from __future__ import annotations


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.labeling import (
    BoustrophedonMeshLabeling,
    GrayCodeLabeling,
    HamiltonCycleMapping,
    SpiralMeshLabeling,
    canonical_cycle,
    canonical_labeling,
    gray_decode,
    gray_encode,
    hypercube_hamiltonian_cycle,
    mesh_hamiltonian_cycle,
)
from repro.topology import Hypercube, KAryNCube, Mesh2D


class TestBoustrophedonLabeling:
    def test_fig_6_9_labels(self):
        """The 4x3 mesh labeling of Fig. 6.9."""
        lab = BoustrophedonMeshLabeling(Mesh2D(4, 3))
        expected = {
            (0, 0): 0, (1, 0): 1, (2, 0): 2, (3, 0): 3,
            (3, 1): 4, (2, 1): 5, (1, 1): 6, (0, 1): 7,
            (0, 2): 8, (1, 2): 9, (2, 2): 10, (3, 2): 11,
        }
        for node, label in expected.items():
            assert lab.label(node) == label
            assert lab.node_of(label) == node

    @pytest.mark.parametrize("w,h", [(2, 2), (4, 3), (3, 4), (6, 6), (5, 5)])
    def test_is_hamiltonian(self, w, h):
        assert BoustrophedonMeshLabeling(Mesh2D(w, h)).is_hamiltonian()

    def test_bijection(self):
        lab = BoustrophedonMeshLabeling(Mesh2D(5, 4))
        labels = {lab.label(v) for v in lab.topology.nodes()}
        assert labels == set(range(20))

    @pytest.mark.parametrize("w,h", [(4, 3), (6, 6), (5, 4)])
    def test_route_path_is_shortest(self, w, h):
        """Lemma 6.1: R selects shortest, label-monotone paths."""
        mesh = Mesh2D(w, h)
        lab = BoustrophedonMeshLabeling(mesh)
        nodes = list(mesh.nodes())
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                path = lab.route_path(u, v)
                assert len(path) - 1 == mesh.distance(u, v)
                labels = [lab.label(p) for p in path]
                if lab.label(u) < lab.label(v):
                    assert labels == sorted(labels)
                else:
                    assert labels == sorted(labels, reverse=True)

    def test_high_low_channels_partition(self):
        mesh = Mesh2D(4, 4)
        lab = BoustrophedonMeshLabeling(mesh)
        high = set(lab.high_channels())
        low = set(lab.low_channels())
        assert high.isdisjoint(low)
        assert len(high) + len(low) == mesh.num_channels
        assert {(v, u) for u, v in high} == low


class TestSpiralLabeling:
    def test_is_hamiltonian(self):
        for w, h in [(3, 3), (4, 4), (5, 4), (6, 6)]:
            assert SpiralMeshLabeling(Mesh2D(w, h)).is_hamiltonian()

    def test_not_shortest_path_preserving(self):
        """The ablation property (cf. Fig. 6.10): a valid Hamiltonian
        labeling whose routing function takes detours."""
        mesh = Mesh2D(6, 6)
        lab = SpiralMeshLabeling(mesh)
        stretched = 0
        nodes = list(mesh.nodes())
        for u in nodes:
            for v in nodes:
                if u != v and len(lab.route_path(u, v)) - 1 > mesh.distance(u, v):
                    stretched += 1
        assert stretched > 0


class TestGrayLabeling:
    def test_gray_roundtrip(self):
        for i in range(256):
            assert gray_decode(gray_encode(i)) == i

    def test_consecutive_codewords_adjacent(self):
        h = Hypercube(6)
        for i in range(63):
            assert h.distance(gray_encode(i), gray_encode(i + 1)) == 1

    def test_label_formula_matches_paper(self):
        """§6.3 formula: bit i of l(v) is XOR of address bits n-1..i."""
        h = Hypercube(5)
        lab = GrayCodeLabeling(h)
        for v in range(32):
            expected = 0
            for i in range(5):
                x = 0
                for j in range(i, 5):
                    x ^= (v >> j) & 1
                expected |= x << i
            assert lab.label(v) == expected

    def test_fig_6_19_source_label(self):
        lab = GrayCodeLabeling(Hypercube(4))
        assert lab.label(0b1100) == 8
        # destination labels from the Fig. 6.19 worked example
        assert lab.label(0b0100) == 7
        assert lab.label(0b0011) == 2
        assert lab.label(0b0111) == 5
        assert lab.label(0b1000) == 15
        assert lab.label(0b1111) == 10

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_is_hamiltonian(self, n):
        assert GrayCodeLabeling(Hypercube(n)).is_hamiltonian()

    @pytest.mark.parametrize("n", [3, 4])
    def test_route_path_is_shortest(self, n):
        """Lemma 6.4: R selects shortest, label-monotone paths."""
        cube = Hypercube(n)
        lab = GrayCodeLabeling(cube)
        for u in cube.nodes():
            for v in cube.nodes():
                if u == v:
                    continue
                path = lab.route_path(u, v)
                assert len(path) - 1 == cube.distance(u, v)
                labels = [lab.label(p) for p in path]
                assert labels == sorted(labels) or labels == sorted(labels, reverse=True)

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_route_path_shortest_property_6cube(self, u, v):
        cube = Hypercube(6)
        lab = GrayCodeLabeling(cube)
        if u != v:
            assert len(lab.route_path(u, v)) - 1 == cube.distance(u, v)


class TestCanonicalFactories:
    def test_canonical_labeling_dispatch(self):
        from repro.labeling import BoustrophedonMesh3DLabeling, SnakeTorusLabeling
        from repro.topology import Mesh3D

        assert isinstance(canonical_labeling(Mesh2D(3, 3)), BoustrophedonMeshLabeling)
        assert isinstance(canonical_labeling(Hypercube(3)), GrayCodeLabeling)
        assert isinstance(canonical_labeling(Mesh3D(2, 2, 2)), BoustrophedonMesh3DLabeling)
        assert isinstance(canonical_labeling(KAryNCube(3, 2)), SnakeTorusLabeling)
        with pytest.raises(TypeError):
            canonical_labeling(object())

    def test_canonical_cycle_dispatch(self):
        assert canonical_cycle(Mesh2D(4, 4)).m == 16
        assert canonical_cycle(Hypercube(3)).m == 8
        with pytest.raises(TypeError):
            canonical_cycle(KAryNCube(3, 2))


class TestHamiltonCycles:
    @pytest.mark.parametrize("w,h", [(2, 2), (4, 4), (4, 3), (3, 4), (5, 4), (4, 5), (2, 6)])
    def test_mesh_cycle_valid(self, w, h):
        mesh = Mesh2D(w, h)
        cyc = mesh_hamiltonian_cycle(mesh)
        assert len(cyc) == mesh.num_nodes
        assert len(set(cyc)) == mesh.num_nodes
        closed = cyc + [cyc[0]]
        for a, b in zip(closed, closed[1:]):
            assert mesh.are_adjacent(a, b)

    def test_mesh_cycle_odd_odd_raises(self):
        with pytest.raises(ValueError):
            mesh_hamiltonian_cycle(Mesh2D(3, 3))

    def test_mesh_cycle_degenerate_raises(self):
        with pytest.raises(ValueError):
            mesh_hamiltonian_cycle(Mesh2D(1, 4))

    def test_table_5_1(self):
        """Table 5.1: the canonical 4x4 cycle in integer addressing."""
        cyc = mesh_hamiltonian_cycle(Mesh2D(4, 4))
        ids = [y * 4 + x for (x, y) in cyc]
        assert ids == [0, 1, 2, 3, 7, 6, 5, 9, 10, 11, 15, 14, 13, 12, 8, 4]

    def test_table_5_3(self):
        """Table 5.3: the canonical 4-cube Gray cycle."""
        h = Hypercube(4)
        cyc = hypercube_hamiltonian_cycle(h)
        expected = [
            "0000", "0001", "0011", "0010", "0110", "0111", "0101", "0100",
            "1100", "1101", "1111", "1110", "1010", "1011", "1001", "1000",
        ]
        assert [h.bits(v) for v in cyc] == expected

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_cube_cycle_valid(self, n):
        cube = Hypercube(n)
        cyc = hypercube_hamiltonian_cycle(cube)
        closed = cyc + [cyc[0]]
        assert len(set(cyc)) == cube.num_nodes
        for a, b in zip(closed, closed[1:]):
            assert cube.are_adjacent(a, b)


class TestHamiltonCycleMapping:
    def test_table_5_2_keys(self):
        """Table 5.2: sorting keys f for the 4x4 mesh with u0 = node 9."""
        mesh = Mesh2D(4, 4)
        mapping = canonical_cycle(mesh)
        u0 = (1, 2)  # integer id 9
        expected_f = {
            0: 17, 1: 18, 2: 19, 3: 20, 4: 16, 5: 23, 6: 22, 7: 21,
            8: 15, 9: 8, 10: 9, 11: 10, 12: 14, 13: 13, 14: 12, 15: 11,
        }
        for i, f in expected_f.items():
            node = (i % 4, i // 4)
            assert mapping.f(node, u0) == f

    def test_table_5_4_keys(self):
        """Table 5.4: sorting keys f for the 4-cube with u0 = 0011."""
        cube = Hypercube(4)
        mapping = canonical_cycle(cube)
        u0 = 0b0011
        expected = {
            0b0000: 17, 0b0001: 18, 0b0010: 4, 0b0011: 3,
            0b0100: 8, 0b0101: 7, 0b0110: 5, 0b0111: 6,
            0b1000: 16, 0b1001: 15, 0b1010: 13, 0b1011: 14,
            0b1100: 9, 0b1101: 10, 0b1110: 12, 0b1111: 11,
        }
        for node, f in expected.items():
            assert mapping.f(node, u0) == f

    def test_rejects_bad_cycle(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            HamiltonCycleMapping(mesh, [(0, 0), (1, 1), (1, 0), (0, 1)])
        with pytest.raises(ValueError):
            HamiltonCycleMapping(mesh, [(0, 0), (1, 0)])

    def test_h_positions(self):
        mesh = Mesh2D(4, 4)
        mapping = canonical_cycle(mesh)
        assert mapping.h((0, 0)) == 1
        assert mapping.h((0, 1)) == 16
        table = mapping.table()
        assert table[0] == ((0, 0), 1)
