"""Network partitioning for tree-like deadlock-free multicast (§6.2.1).

Doubling every channel of a 2D mesh and partitioning the result into
the four acyclic subnetworks

    N_{+X,+Y}: channels (i,j)->(i+1,j) and (i,j)->(i,j+1)
    N_{-X,+Y}: channels (i,j)->(i-1,j) and (i,j)->(i,j+1)
    N_{-X,-Y}: channels (i,j)->(i-1,j) and (i,j)->(i,j-1)
    N_{+X,-Y}: channels (i,j)->(i+1,j) and (i,j)->(i,j-1)

lets the X-first multicast tree run deadlock-free: each sub-multicast
stays inside one subnetwork whose channels can be totally ordered
(Fig. 6.8), so no cyclic channel dependency can form (Assertion 1).
"""

from __future__ import annotations

from collections import deque

from ..models.request import MulticastRequest
from ..models.results import MulticastTree
from ..registry import AlgorithmSpec, register_spec
from ..topology.base import Node
from ..topology.mesh import Mesh2D

QUADRANTS = ("+X+Y", "-X+Y", "-X-Y", "+X-Y")

#: unit steps allowed inside each subnetwork
_QUADRANT_STEPS = {
    "+X+Y": ((1, 0), (0, 1)),
    "-X+Y": ((-1, 0), (0, 1)),
    "-X-Y": ((-1, 0), (0, -1)),
    "+X-Y": ((1, 0), (0, -1)),
}


def quadrant_channels(mesh: Mesh2D, quadrant: str) -> list[tuple[Node, Node]]:
    """The directed channels belonging to one subnetwork."""
    steps = _QUADRANT_STEPS[quadrant]
    out = []
    for u in mesh.nodes():
        for dx, dy in steps:
            v = (u[0] + dx, u[1] + dy)
            if mesh.is_node(v):
                out.append((u, v))
    return out


def partition_destinations(source: Node, destinations) -> dict:
    """Partition a destination set into the four quadrant sets
    (§6.2.1's D_{+X,+Y} etc.; the half-open boundaries tile the plane
    minus the source)."""
    x0, y0 = source
    out = {q: [] for q in QUADRANTS}
    for d in destinations:
        x, y = d
        if x > x0 and y >= y0:
            out["+X+Y"].append(d)
        elif x <= x0 and y > y0:
            out["-X+Y"].append(d)
        elif x < x0 and y <= y0:
            out["-X-Y"].append(d)
        else:  # x >= x0 and y < y0
            out["+X-Y"].append(d)
    return out


def _mirror(quadrant: str, local: Node, d: Node) -> tuple[int, int]:
    """Coordinates of ``d`` relative to ``local`` with the quadrant's
    axes flipped to look like +X,+Y."""
    sx = 1 if "+X" in quadrant else -1
    sy = 1 if "+Y" in quadrant else -1
    return (sx * (d[0] - local[0]), sy * (d[1] - local[1]))


def double_channel_xfirst_step(
    mesh: Mesh2D, quadrant: str, local: Node, dests
) -> tuple[bool, dict]:
    """One step of the double-channel X-first routing algorithm
    (Fig. 6.6), generalised to all four subnetworks by mirroring.

    Returns ``(deliver_local, {next_node: sublist})``.
    """
    sx = 1 if "+X" in quadrant else -1
    sy = 1 if "+Y" in quadrant else -1
    rel = {d: _mirror(quadrant, local, d) for d in dests}
    # Step 1: while strictly west of every destination, move east.
    min_rx = min(r[0] for r in rel.values()) if rel else 0
    if rel and min_rx > 0:
        return False, {(local[0] + sx, local[1]): list(dests)}
    deliver = False
    column, remainder = [], []
    for d in dests:
        rx, ry = rel[d]
        if rx == 0 and ry == 0:
            deliver = True
        elif rx == 0:
            column.append(d)  # step 3: same column, go vertical
        else:
            remainder.append(d)
    groups: dict = {}
    if column:
        groups[(local[0], local[1] + sy)] = column
    if remainder:
        groups[(local[0] + sx, local[1])] = remainder
    return deliver, groups


def double_channel_xfirst_route(
    request: MulticastRequest,
) -> list[tuple[str, MulticastTree]]:
    """The tree-like deadlock-free multicast of §6.2.1: one X-first
    multicast tree per quadrant subnetwork.

    Returns ``[(quadrant, tree), ...]`` for the non-empty quadrants; the
    simulator maps each tree onto its own channel copies.
    """
    mesh = request.topology
    if not isinstance(mesh, Mesh2D):
        raise TypeError("double-channel X-first routing is defined for 2D meshes")
    results = []
    delivered_all: set = set()
    for quadrant, dlist in partition_destinations(request.source, request.destinations).items():
        if not dlist:
            continue
        arcs: list = []
        delivered: set = set()
        pending = deque([(request.source, list(dlist))])
        while pending:
            w, sub = pending.popleft()
            deliver, groups = double_channel_xfirst_step(mesh, quadrant, w, sub)
            if deliver:
                delivered.add(w)
            for nxt, nsub in groups.items():
                arcs.append((w, nxt))
                pending.append((nxt, nsub))
        tree = MulticastTree(mesh, request.source, tuple(arcs))
        allowed = set(quadrant_channels(mesh, quadrant))
        for arc in arcs:
            if arc not in allowed:
                raise RuntimeError(f"arc {arc} left subnetwork {quadrant}")
        sub_req = MulticastRequest(mesh, request.source, tuple(dlist))
        tree.validate(sub_req, shortest_paths=True)
        delivered_all |= delivered
        results.append((quadrant, tree))
    if delivered_all != set(request.destinations):
        raise RuntimeError("double-channel X-first failed to deliver")
    return results


def quadrant_cdg_certificate(topology, params=None):
    """Conservative CDG certifying the double-channel X-first tree:
    the four quadrant subnetworks are independent channel sets (each
    edge tagged by its quadrant), and each quadrant CDG is acyclic
    because tree levels strictly advance the quadrant's partial order
    (Fig. 6.8 / Assertion 1)."""
    from .cdg import full_quadrant_cdg

    edges = set()
    for quadrant in QUADRANTS:
        edges |= {
            ((c1, quadrant), (c2, quadrant))
            for c1, c2 in full_quadrant_cdg(topology, quadrant)
        }
    return edges


register_spec(
    AlgorithmSpec(
        name="xfirst-tree",
        kind="dynamic-worm",
        topologies=("mesh2d",),
        worm_style="xfirst-tree",
        deadlock_free=True,
        min_channels=2,
        cdg_certificate=quadrant_cdg_certificate,
        aliases=("tree-xfirst",),
        reference=(
            "§5.3 X-first tree on the §6.2 double-channel quadrant "
            "subnetworks (Fig. 6.8); single-channel deployment is the "
            "Fig. 6.4 deadlock counterexample"
        ),
    )
)
