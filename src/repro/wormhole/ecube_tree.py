"""The nCUBE-2-style e-cube multicast/broadcast tree (§6.1, Fig. 6.1).

Each path from source to destination follows e-cube (lowest differing
dimension first) routing; destinations sharing a first hop share a
branch.  With wormhole switching on single channels this tree is *not*
deadlock-free — §6.1 exhibits two simultaneous broadcasts from nodes
000 and 001 of a 3-cube that block each other forever.  The routing
itself is included to reproduce that demonstration (and as the
tree-shaped workload for the dynamic study's deadlock tests).
"""

from __future__ import annotations

from collections import deque

from ..models.request import MulticastRequest
from ..models.results import MulticastTree
from ..registry import register
from ..topology.base import Node
from ..topology.hypercube import Hypercube


def ecube_step(cube: Hypercube, local: Node, dests) -> tuple[bool, dict]:
    """Partition destinations by their e-cube first hop (lowest
    differing dimension)."""
    deliver = False
    groups: dict = {}
    for d in dests:
        if d == local:
            deliver = True
            continue
        diff = d ^ local
        low_bit = diff & (-diff)
        groups.setdefault(local ^ low_bit, []).append(d)
    return deliver, groups


@register(
    "ecube-tree",
    kind="dynamic-worm",
    topologies=("hypercube",),
    result_model="tree",
    worm_style="tree",
    deadlock_free=False,
    reference="§6.1 Fig. 6.1 (lockstep e-cube tree; the deadlock counterexample)",
)
def ecube_tree_route(request: MulticastRequest) -> MulticastTree:
    """Drive the e-cube multicast tree over the hypercube."""
    cube = request.topology
    if not isinstance(cube, Hypercube):
        raise TypeError("the e-cube tree is defined for hypercubes")
    arcs: list = []
    delivered: set = set()
    pending = deque([(request.source, list(request.destinations))])
    while pending:
        w, dlist = pending.popleft()
        deliver, groups = ecube_step(cube, w, dlist)
        if deliver:
            delivered.add(w)
        for nxt, sub in groups.items():
            arcs.append((w, nxt))
            pending.append((nxt, sub))
    if delivered != set(request.destinations):
        raise RuntimeError("e-cube tree failed to deliver")
    tree = MulticastTree(cube, request.source, tuple(arcs))
    tree.validate(request, shortest_paths=True)
    return tree


def broadcast_tree(cube: Hypercube, source: Node) -> MulticastTree:
    """The full e-cube broadcast tree (the binomial spanning tree the
    nCUBE-2 uses for one-to-all delivery)."""
    request = MulticastRequest(
        cube, source, tuple(v for v in cube.nodes() if v != source)
    )
    return ecube_tree_route(request)


def subcube_multicast_route(request: MulticastRequest) -> MulticastTree:
    """The nCUBE-2's restricted multicast (§6.1: "a special form of
    multicast in which the destination nodes form a subcube").

    Requires the multicast set K (source + destinations) to be exactly
    an aligned subcube containing the source; delivery is the e-cube
    broadcast tree *within* that subcube.  One such multicast at a time
    is harmless, but two overlapping subcube multicasts are exactly the
    Fig. 6.1 configuration — the restriction does not buy deadlock
    freedom, which is why Chapter 6 is needed.

    Raises ``ValueError`` if K is not an aligned subcube.
    """
    cube = request.topology
    if not isinstance(cube, Hypercube):
        raise TypeError("subcube multicast is defined for hypercubes")
    members = sorted(request.multicast_set)
    size = len(members)
    if size & (size - 1):
        raise ValueError("multicast set size is not a power of two")
    # the free dimensions are those on which members disagree
    base = members[0]
    free_mask = 0
    for m in members:
        free_mask |= m ^ base
    dims = free_mask.bit_count()
    if 1 << dims != size:
        raise ValueError("multicast set does not span an aligned subcube")
    expected = {base}
    for m in members:
        if (m & ~free_mask) != (base & ~free_mask):
            raise ValueError("multicast set is not an aligned subcube")
    return ecube_tree_route(request)
