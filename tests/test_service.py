"""Unit + integration tests for the resilient routing service.

Covers the wire protocol, the route-plan cache, the circuit breaker,
graceful degradation through registered fallbacks, load shedding,
deadlines, and the socket front end — everything except the chaos
fault-injection matrix, which lives in `test_service_chaos.py`.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro import registry
from repro.models.request import MulticastRequest
from repro.service import (
    ChaosPlan,
    CircuitBreaker,
    RoutePlanCache,
    RouteRequest,
    RouteResponse,
    RouteService,
    ServiceClient,
    ServiceConfig,
    ServiceOverloaded,
)
from repro.service.cache import route_key
from repro.service.protocol import ProtocolError, decode_line, encode_line
from repro.service.server import serve
from repro.topology import Mesh2D


class TestProtocol:
    def test_request_roundtrip_mesh_nodes(self):
        request = RouteRequest(
            request_id=7,
            topology="mesh:8x8",
            scheme="dual-path",
            source=(0, 0),
            destinations=((7, 7), (3, 4)),
            budget=1000,
            deadline=2.5,
        )
        wire = json.loads(encode_line(request.to_json()))
        back = RouteRequest.from_json(wire)
        assert back == request
        assert isinstance(back.source, tuple)
        assert all(isinstance(d, tuple) for d in back.destinations)

    def test_request_roundtrip_cube_nodes(self):
        request = RouteRequest(
            request_id=1,
            topology="cube:4",
            scheme="greedy-st",
            source=0,
            destinations=(3, 9, 15),
        )
        back = RouteRequest.from_json(json.loads(encode_line(request.to_json())))
        assert back == request
        assert isinstance(back.source, int)

    def test_response_roundtrip(self):
        response = RouteResponse(
            request_id=9,
            ok=True,
            scheme="sorted-mp",
            degraded=True,
            traffic=14,
            max_hops=9,
            attempts=2,
        )
        assert RouteResponse.from_json(response.to_json()) == response
        error = RouteResponse(
            request_id=10, ok=False, error="timeout", detail="too slow", attempts=1
        )
        assert RouteResponse.from_json(error.to_json()) == error

    def test_error_code_vocabulary_enforced(self):
        with pytest.raises(ValueError):
            RouteResponse(request_id=1, ok=False, error="kaboom")
        with pytest.raises(ValueError):
            RouteResponse(request_id=1, ok=True, error="timeout")

    def test_replayed_tags_cache_hit(self):
        response = RouteResponse(
            request_id=1, ok=True, scheme="dual-path", traffic=5, max_hops=3, attempts=2
        )
        replay = response.replayed(42)
        assert replay.request_id == 42
        assert replay.cache_hit and replay.attempts == 0
        assert replay.traffic == response.traffic

    def test_decode_line_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_line(b"[1,2,3]\n")
        with pytest.raises(ProtocolError):
            RouteRequest.from_json({"op": "route"})

    def test_require_raises_typed(self):
        shed = RouteResponse(request_id=1, ok=False, error="overloaded", detail="full")
        with pytest.raises(ServiceOverloaded):
            shed.require()
        ok = RouteResponse(request_id=1, ok=True, scheme="x", traffic=1, max_hops=1)
        assert ok.require() is ok


class TestRoutePlanCache:
    def test_lru_eviction_order(self):
        cache = RoutePlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_counters_and_hit_rate(self):
        cache = RoutePlanCache(capacity=4)
        assert cache.get("missing") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_peek_does_not_count(self):
        cache = RoutePlanCache(capacity=4)
        cache.put("k", "v")
        assert cache.peek("k") == "v"
        assert cache.peek("absent") is None
        assert cache.hits == 0 and cache.misses == 0

    def test_zero_capacity_stores_nothing(self):
        cache = RoutePlanCache(capacity=0)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert cache.misses == 2 - 1  # one counted miss

    def test_key_ignores_destination_order(self):
        a = route_key("mesh:8x8", "dual-path", (0, 0), ((1, 1), (2, 2)))
        b = route_key("mesh:8x8", "dual-path", (0, 0), ((2, 2), (1, 1)))
        assert a == b
        assert a != route_key("mesh:8x8", "dual-path", (1, 0), ((1, 1), (2, 2)))


class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers(self):
        breaker = CircuitBreaker(threshold=3, cooldown=0.05)
        t = 100.0
        assert breaker.allow(t)
        for _ in range(3):
            breaker.record_failure(t)
        assert breaker.state == "open" and breaker.trips == 1
        assert not breaker.allow(t + 0.01)  # still cooling
        assert breaker.allow(t + 0.06)  # the half-open probe
        assert not breaker.allow(t + 0.06)  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow(t + 0.07)

    def test_failed_probe_reopens_immediately(self):
        breaker = CircuitBreaker(threshold=2, cooldown=0.05)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.allow(0.1)  # half-open
        breaker.record_failure(0.1)
        assert breaker.state == "open"
        assert not breaker.allow(0.11)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        assert breaker.state == "closed"


class TestChaosPlan:
    def test_deterministic_and_attempt0_only(self):
        plan = ChaosPlan(seed=3, kill_rate=0.2, delay_rate=0.2, drop_rate=0.1)
        actions = [plan.action(i, 0) for i in range(200)]
        assert actions == [plan.action(i, 0) for i in range(200)]
        assert all(plan.action(i, 1) is None for i in range(200))
        hit = sum(1 for a in actions if a is not None)
        assert 0.3 < hit / 200 < 0.7  # close to the 50% aggregate rate
        assert {"kill", "delay", "drop"} <= set(a for a in actions if a)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosPlan(seed=1, kill_rate=0.6, delay_rate=0.6)
        with pytest.raises(ValueError):
            ChaosPlan(seed=1, kill_rate=-0.1)

    def test_json_roundtrip(self):
        plan = ChaosPlan(seed=5, kill_rate=0.1, delay_rate=0.2, delay_s=0.01)
        assert ChaosPlan.from_json(json.loads(json.dumps(plan.to_json()))) == plan


def _mesh_request(request_id, dests=((7, 7), (3, 4), (1, 6)), scheme="dual-path"):
    return RouteRequest(
        request_id=request_id,
        topology="mesh:8x8",
        scheme=scheme,
        source=(0, 0),
        destinations=dests,
    )


class TestRouteService:
    def test_route_matches_direct_registry_call(self):
        with RouteService(ServiceConfig(workers=1)) as svc:
            response = svc.route(_mesh_request(1), timeout=30)
        assert response.ok and not response.degraded
        spec = registry.get("dual-path")
        route = spec.fn(MulticastRequest(Mesh2D(8, 8), (0, 0), ((7, 7), (3, 4), (1, 6))))
        assert response.traffic == route.traffic
        assert response.max_hops == max(
            route.dest_hops(((7, 7), (3, 4), (1, 6))).values()
        )
        assert response.scheme == "dual-path"

    def test_cache_hits_and_counters(self):
        with RouteService(ServiceConfig(workers=1)) as svc:
            first = svc.route(_mesh_request(1), timeout=30)
            second = svc.route(_mesh_request(2), timeout=30)
            report = svc.drain(timeout=30)
        assert not first.cache_hit and second.cache_hit
        assert second.traffic == first.traffic
        assert second.request_id == 2
        assert report["counters"]["cache_served"] == 1
        assert report["cache"]["hits"] == 1

    def test_typed_admission_errors(self):
        with RouteService(ServiceConfig(workers=1)) as svc:
            unknown = svc.route(_mesh_request(1, scheme="nope"), timeout=30)
            unsupported = svc.route(
                RouteRequest(2, "torus:4x2", "sorted-mp", (0, 0), ((1, 1),)),
                timeout=30,
            )
            bad_node = svc.route(
                RouteRequest(3, "mesh:4x4", "dual-path", (0, 0), ((9, 9),)),
                timeout=30,
            )
            bad_topo = svc.route(
                RouteRequest(4, "blob:9", "dual-path", (0, 0), ((1, 1),)), timeout=30
            )
            no_dests = svc.route(
                RouteRequest(5, "mesh:4x4", "dual-path", (0, 0), ()), timeout=30
            )
        assert unknown.error == "unknown-scheme"
        assert unsupported.error == "unsupported-topology"
        assert bad_node.error == "bad-request"
        assert bad_topo.error == "bad-request"
        assert no_dests.error == "bad-request"

    def test_budget_exhaustion_degrades_to_fallback(self):
        """A single `omp` request over budget falls back to the Ch. 5
        `sorted-mp` heuristic for the same problem, tagged degraded."""
        with RouteService(ServiceConfig(workers=1)) as svc:
            response = svc.route(
                RouteRequest(
                    1,
                    "mesh:6x6",
                    "omp",
                    (0, 0),
                    ((5, 5), (2, 3), (4, 1), (0, 5), (5, 0)),
                    budget=10,
                ),
                timeout=30,
            )
            report = svc.drain(timeout=30)
        assert response.ok and response.degraded
        assert response.scheme == "sorted-mp"
        assert report["counters"]["budget_fallbacks"] == 1
        assert report["counters"]["degraded"] == 1

    def test_breaker_opens_and_short_circuits_to_fallback(self):
        """After `breaker_threshold` consecutive budget failures, the
        primary is skipped entirely: later requests dispatch once (to
        the fallback) instead of burning a doomed exact search."""
        config = ServiceConfig(
            workers=1,
            breaker_threshold=2,
            breaker_cooldown=60.0,
            cache_capacity=0,
        )
        dest_sets = [
            ((5, 5), (2, 3), (4, 1), (0, 5), (5, 0)),
            ((5, 4), (1, 3), (4, 2), (0, 5), (5, 0)),
            ((5, 3), (2, 4), (3, 1), (1, 5), (5, 0)),
            ((4, 5), (2, 2), (4, 3), (0, 4), (5, 1)),
        ]
        responses = []
        with RouteService(config) as svc:
            for i, dests in enumerate(dest_sets):
                responses.append(
                    svc.route(
                        RouteRequest(i, "mesh:6x6", "omp", (0, 0), dests, budget=10),
                        timeout=60,
                    )
                )
            report = svc.drain(timeout=30)
        assert all(r.ok and r.degraded and r.scheme == "sorted-mp" for r in responses)
        # the first two burned a primary attempt then fell back (two
        # dispatches); once the breaker opened, requests went straight
        # to the fallback (one dispatch)
        assert [r.attempts for r in responses] == [2, 2, 1, 1]
        breaker = report["breakers"]["omp@mesh:6x6"]
        assert breaker["state"] == "open" and breaker["trips"] == 1
        assert report["counters"]["breaker_short_circuits"] == 2

    def test_load_shedding_typed_overloaded(self):
        """With a tiny intake bound and slow workers, extra admissions
        shed immediately with a typed `overloaded` response."""
        config = ServiceConfig(
            workers=1,
            queue_bound=2,
            cache_capacity=0,
            chaos=ChaosPlan(seed=1, delay_rate=1.0, delay_s=0.3),
        )
        with RouteService(config) as svc:
            futures = [
                svc.submit(_mesh_request(i, dests=((7, 7 - i % 4), (3, i % 8))))
                for i in range(12)
            ]
            responses = [f.result(timeout=60) for f in futures]
            report = svc.drain(timeout=60)
        shed = [r for r in responses if not r.ok]
        assert shed and all(r.error == "overloaded" for r in shed)
        assert all(r.attempts == 0 for r in shed)
        assert report["counters"]["shed"] == len(shed)
        assert report["counters"]["completed"] == 12

    def test_deadline_expires_as_typed_timeout(self):
        """A dropped response leaves only the per-request deadline;
        the request resolves `timeout`, never hangs."""
        config = ServiceConfig(
            workers=1,
            request_deadline=0.4,
            cache_capacity=0,
            chaos=ChaosPlan(seed=1, drop_rate=1.0),
        )
        with RouteService(config) as svc:
            response = svc.route(_mesh_request(1), timeout=30)
            report = svc.drain(timeout=30)
        assert response.error == "timeout"
        assert report["counters"]["timeouts"] >= 1

    def test_submit_after_close_is_typed_shutdown(self):
        svc = RouteService(ServiceConfig(workers=1)).start()
        svc.close()
        response = svc.submit(_mesh_request(1)).result(timeout=10)
        assert response.error == "shutdown"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(retry_jitter=2.0)
        with pytest.raises(ValueError):
            ServiceConfig(heartbeat_timeout=0.01, heartbeat_interval=0.05)


class TestFallbackConformance:
    def test_declared_fallbacks_resolve_and_match_model(self):
        """Every declared fallback is a registered, routable scheme
        producing the same Chapter 3 result model as its primary —
        degraded responses stay drop-in comparable."""
        declaring = [s for s in registry.specs() if s.fallback is not None]
        assert declaring, "expected at least the exact solvers to declare fallbacks"
        for spec in declaring:
            fallback = spec.fallback_spec()
            assert fallback is not None
            assert fallback.routable
            assert fallback.result_model == spec.result_model
            assert fallback.name != spec.name

    def test_self_fallback_rejected(self):
        with pytest.raises(ValueError, match="own fallback"):
            registry.AlgorithmSpec(name="x", kind="exact", fallback="x")


class TestSocketServer:
    def test_roundtrip_stats_and_shutdown(self, tmp_path):
        path = str(tmp_path / "route.sock")
        thread = threading.Thread(
            target=serve,
            args=(path,),
            kwargs={"config": ServiceConfig(workers=1)},
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 10
        while not os.path.exists(path):
            assert time.monotonic() < deadline, "socket never appeared"
            time.sleep(0.02)
        with ServiceClient(path) as client:
            assert client.ping()
            first = client.route("mesh:8x8", "dual-path", (0, 0), [(7, 7), (3, 4)])
            assert first.ok and isinstance(first.traffic, int)
            second = client.route("mesh:8x8", "dual-path", (0, 0), [(7, 7), (3, 4)])
            assert second.cache_hit
            stats = client.stats()
            assert stats["counters"]["submitted"] == 2
            assert stats["workers"] and all(w["pid"] for w in stats["workers"])
            client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert not os.path.exists(path)

    def test_pipelined_requests_all_answered(self, tmp_path):
        path = str(tmp_path / "route.sock")
        thread = threading.Thread(
            target=serve,
            args=(path,),
            kwargs={"config": ServiceConfig(workers=2)},
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 10
        while not os.path.exists(path):
            assert time.monotonic() < deadline
            time.sleep(0.02)
        with ServiceClient(path) as client:
            for i in range(10):
                client.submit(
                    RouteRequest(
                        request_id=100 + i,
                        topology="mesh:8x8",
                        scheme="dual-path",
                        source=(i % 8, 0),
                        destinations=((7, (i * 3) % 8), (0, 7)),
                    )
                )
            responses = {100 + i: client.collect(100 + i) for i in range(10)}
            assert all(r.ok for r in responses.values())
            client.shutdown()
        thread.join(timeout=10)
