#!/usr/bin/env python
"""Regenerate every Chapter 7 figure at reduced scale.

The programmatic face of the benchmark suite: runs all eleven
experiments through :mod:`repro.experiments` and prints each measured
table.  Increase ``SCALE`` (or use ``python -m repro reproduce <fig>
--scale 1.0``) for tighter replication.

Run:  python examples/reproduce_figures.py
"""

from __future__ import annotations

import time

from repro.experiments import EXPERIMENTS, reproduce

SCALE = 0.15


def main() -> None:
    t0 = time.time()
    for name in EXPERIMENTS:
        result = reproduce(name, scale=SCALE)
        print(result.as_table())
        print()
    print(f"(all figures regenerated at scale {SCALE} in {time.time() - t0:.1f}s; "
          "see benchmarks/ for the asserted full-scale runs)")


if __name__ == "__main__":
    main()
