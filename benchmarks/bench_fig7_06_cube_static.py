"""Fig. 7.6 — additional traffic of the deadlock-free multicast
methods (dual-path, multi-path, fixed-path) on a 6-cube.

Paper shape: multi-path <= dual-path <= fixed-path (the static
efficiency ordering; the dynamic study later reverses part of it under
load)."""

from __future__ import annotations

from conftest import resolve_algorithms, static_sweep

from repro.topology import Hypercube

KS = [2, 5, 10, 20, 35, 50]


def run():
    cube = Hypercube(6)
    algorithms = resolve_algorithms({
        "multi-path": "multi-path",
        "dual-path": "dual-path",
        "fixed-path": "fixed-path",
    })
    return static_sweep(cube, algorithms, KS, base_runs=60)


def test_fig7_6_cube_static(benchmark, emit):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig7_06_cube_static",
        "Fig 7.6: additional traffic of multicast star methods on a 6-cube",
        ["k", "runs", "multi-path", "dual-path", "fixed-path"],
        rows,
    )
    for _k, _, multi, dual, fixed in rows:
        # on the hypercube dual and multi are statically close (label
        # bucketing can forfeit prefix sharing at small k); both stay
        # well below fixed-path
        assert multi <= dual * 1.25
        assert dual <= fixed * 1.02
