"""Extension study — the design space of deadlock-free multicast.

Chapter 6 exists because wormhole routers have no message buffers: the
pre-existing safe option was a cut-through router that *buffers* at
replication points (ref. [21]).  This benchmark puts all deadlock-free
alternatives side by side on the same workload:

* ``vct-tree``     — buffered-replication tree on VCT routers
                     (hardware cost: full-message buffers per node);
* ``tree-xfirst``  — lockstep wormhole tree on doubled channels
                     (hardware cost: 2x channels);
* ``dual-path`` / ``multi-path`` — Chapter 6's wormhole stars
                     (no extra hardware).

Expected: at low load all are close; under load the lockstep tree
saturates first; the VCT tree stays strong (it sheds blocking into
buffers) but that strength is bought with per-node buffering hardware —
the trade Chapter 6's path schemes avoid.
"""

from __future__ import annotations

from conftest import scaled

from repro.sim import SimConfig, run_dynamic
from repro.topology import Mesh2D

INTERARRIVALS_US = (1000, 300, 150)


def run():
    mesh = Mesh2D(8, 8)
    rows = []
    for ia in INTERARRIVALS_US:
        base = SimConfig(
            num_messages=scaled(400),
            num_destinations=10,
            mean_interarrival=ia * 1e-6,
            seed=61,
        )
        row = [ia]
        row.append(run_dynamic(mesh, "vct-tree", base).mean_latency * 1e6)
        row.append(
            run_dynamic(mesh, "tree-xfirst", base.replace(channels_per_link=2)).mean_latency
            * 1e6
        )
        row.append(run_dynamic(mesh, "dual-path", base).mean_latency * 1e6)
        row.append(run_dynamic(mesh, "multi-path", base).mean_latency * 1e6)
        rows.append(row)
    return rows


def test_deadlock_free_alternatives(benchmark, emit):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "deadlock_free_alternatives",
        "Extension: deadlock-free multicast alternatives, latency (us) vs load (8x8 mesh, k=10)",
        ["interarrival_us", "vct-tree (buffers)", "tree-xfirst (2x chan)", "dual-path", "multi-path"],
        rows,
    )
    # all complete (no DeadlockDetected raised) at every load.  The
    # trade-off in full: at LOW load the VCT tree is the slowest (it
    # pays full-message buffering at every replication point) and the
    # wormhole schemes sit near the pipeline floor; at HIGH load the
    # VCT tree is the strongest (blocking sheds into buffers) — the
    # reason ref. [21] built on cut-through, and the hardware cost
    # Chapter 6's bufferless path schemes avoid.
    low, high = rows[0], rows[-1]
    assert low[1] == max(low[1:])  # buffering penalty when uncontended
    assert high[1] == min(high[1:])  # graceful degradation under load
