"""Empirical validation of the complexity claims (Corollaries 5.1-5.2,
Lemmas 6.2-6.3): measure wall-clock scaling of message preparation and
routing with the destination count and fit a log-log exponent.

Expected shapes (k from 32 to 512 on a 32x32 mesh): the path schemes'
per-message cost is prep O(k log k) plus a walk bounded by the network
size N, so the fitted exponent saturates *below* 1 as the walk term
dominates; greedy ST's replicate nodes each do O(k^2) work, so its
exponent sits near 2.  The assertion is the separation: quadratic
greedy ST vs sub-linear-saturating path schemes.
"""

from __future__ import annotations

import math
import random
import time

from conftest import scaled

from repro.heuristics import greedy_st_route, sorted_mp_route
from repro.models import random_multicast
from repro.topology import Mesh2D
from repro.wormhole import dual_path_route, multi_path_route

KS = (32, 128, 512)


def _time(algo, requests) -> float:
    t0 = time.perf_counter()
    for r in requests:
        algo(r)
    return (time.perf_counter() - t0) / len(requests)


def _fit_exponent(ks, times) -> float:
    """Least-squares slope of log(time) vs log(k)."""
    lx = [math.log(k) for k in ks]
    ly = [math.log(t) for t in times]
    n = len(ks)
    mx, my = sum(lx) / n, sum(ly) / n
    num = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    den = sum((x - mx) ** 2 for x in lx)
    return num / den


def run():
    mesh = Mesh2D(32, 32)
    algos = {
        "sorted-MP": sorted_mp_route,
        "dual-path": dual_path_route,
        "multi-path": multi_path_route,
        "greedy-ST": greedy_st_route,
    }
    rng = random.Random(111)
    reps = scaled(8, minimum=4)
    rows = []
    for name, algo in algos.items():
        times = []
        for k in KS:
            requests = [random_multicast(mesh, k, rng) for _ in range(reps)]
            algo(requests[0])  # warm caches
            times.append(_time(algo, requests))
        exponent = _fit_exponent(KS, times)
        rows.append([name] + [t * 1e3 for t in times] + [exponent])
    return rows


def test_complexity_scaling(benchmark, emit):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "complexity_scaling",
        "Empirical complexity: ms per multicast at k=32/128/512 and fitted exponent (32x32 mesh)",
        ["algorithm", "k=32 ms", "k=128 ms", "k=512 ms", "exponent"],
        rows,
    )
    by = {r[0]: r[-1] for r in rows}
    # path schemes: cost saturates with the bounded walk length
    for name in ("sorted-MP", "dual-path", "multi-path"):
        assert by[name] < 1.2, (name, by[name])
    # greedy ST's per-replicate quadratic work dominates
    assert by["greedy-ST"] > 1.5
    assert by["greedy-ST"] > by["sorted-MP"] + 0.7
