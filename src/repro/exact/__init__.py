"""Exact optimal multicast solvers for small instances (Ch. 4).

Every optimisation problem here is NP-complete for meshes and
hypercubes (Theorems 4.1-4.8), so these solvers are exponential and
exist to measure the optimality gaps of the Chapter 5/6 heuristics.

The registered solvers run on integer-bitmask DP kernels over the
shared :mod:`repro.topology.oracle` distance layer; the original
implementations are preserved verbatim in :mod:`repro.exact.reference`
as the parity/benchmark baseline.
"""

from . import reference
from .bitmask import RequestTables
from .errors import InfeasibleRoute, SearchBudgetExceeded
from .omp import (
    held_karp_closed_walk_cost,
    held_karp_walk_cost,
    optimal_multicast_cycle,
    optimal_multicast_path,
    solve_path_mask,
)
from .oms import optimal_multicast_star_cost, star_lower_bound
from .omt import optimal_multicast_tree_cost, shortest_path_dag
from .steiner import minimal_steiner_tree_cost

__all__ = [
    "InfeasibleRoute",
    "RequestTables",
    "SearchBudgetExceeded",
    "held_karp_closed_walk_cost",
    "held_karp_walk_cost",
    "minimal_steiner_tree_cost",
    "optimal_multicast_cycle",
    "optimal_multicast_path",
    "optimal_multicast_star_cost",
    "optimal_multicast_tree_cost",
    "reference",
    "shortest_path_dag",
    "solve_path_mask",
    "star_lower_bound",
]
