"""Basic heuristic multicast routing algorithms (Ch. 5) and baselines."""

from .baselines import broadcast_route, multiple_unicast_route
from .divided_greedy import divided_greedy_route, divided_greedy_step
from .greedy_st import (
    build_virtual_tree,
    greedy_st_prepare,
    greedy_st_route,
    nearest_on_shortest_paths,
    virtual_tree_length,
)
from .kmb import kmb_route
from .len_tree import len_route, len_step
from .sorted_mp import (
    sorted_mc_route,
    sorted_mp_next_hop,
    sorted_mp_prepare,
    sorted_mp_route,
)
from .xfirst import xfirst_route, xfirst_step

__all__ = [
    "broadcast_route",
    "build_virtual_tree",
    "divided_greedy_route",
    "divided_greedy_step",
    "greedy_st_prepare",
    "greedy_st_route",
    "kmb_route",
    "len_route",
    "len_step",
    "multiple_unicast_route",
    "nearest_on_shortest_paths",
    "sorted_mc_route",
    "sorted_mp_next_hop",
    "sorted_mp_prepare",
    "sorted_mp_route",
    "virtual_tree_length",
    "xfirst_route",
    "xfirst_step",
]
