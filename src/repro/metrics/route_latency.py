"""Analytic per-destination latency of a multicast route under each
switching technology (Ch. 2 models applied to Ch. 3 routes).

This quantifies Chapter 3's central argument for *which multicast model
fits which switching technology*: under store-and-forward, latency is
linear in hops, so the multicast tree model (shortest path to every
destination) wins; under wormhole/VCT/circuit switching, distance
hardly matters and minimising traffic (Steiner tree) or avoiding
replication (path/star models) is the right objective.
"""

from __future__ import annotations

from statistics import mean

from ..models.request import MulticastRequest
from .switching import (
    SwitchingParams,
    circuit_switching_latency,
    store_and_forward_latency,
    virtual_cut_through_latency,
    wormhole_latency,
)

_MODELS = {
    "store-and-forward": store_and_forward_latency,
    "virtual-cut-through": virtual_cut_through_latency,
    "circuit-switching": circuit_switching_latency,
    "wormhole": wormhole_latency,
}


def dest_latencies(
    route,
    request: MulticastRequest,
    switching: str,
    params: SwitchingParams | None = None,
) -> dict:
    """Contention-free delivery latency per destination.

    For path-shaped routes under store-and-forward, a destination ``m``
    hops along the path receives the message after m full packet
    transmissions; under the pipelined technologies only the distance
    term differs.  Tree routes behave identically per destination since
    replication is free at routers.
    """
    model = _MODELS[switching]
    if params is None:
        params = SwitchingParams()
    hops = route.dest_hops(request.destinations)
    return {d: model(h, params) for d, h in hops.items()}


def mean_latency(
    route,
    request: MulticastRequest,
    switching: str,
    params: SwitchingParams | None = None,
) -> float:
    """Mean contention-free latency over the destinations."""
    return mean(dest_latencies(route, request, switching, params).values())


def max_latency(
    route,
    request: MulticastRequest,
    switching: str,
    params: SwitchingParams | None = None,
) -> float:
    """Worst-case contention-free latency over the destinations."""
    return max(dest_latencies(route, request, switching, params).values())
