"""Fig. 7.2 — additional traffic of the sorted MP algorithm on a
10-cube vs multiple one-to-one and broadcast."""

from __future__ import annotations

from conftest import resolve_algorithms, static_sweep

from repro.topology import Hypercube

KS = [10, 50, 100, 200, 400, 600, 900]


def run():
    cube = Hypercube(10)
    algorithms = resolve_algorithms({
        "sorted-MP": "sorted-mp",
        "multi-unicast": "multi-unicast",
        "broadcast": "broadcast",
    })
    return static_sweep(cube, algorithms, KS, base_runs=30)


def test_fig7_2_sorted_mp_cube(benchmark, emit):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig7_02_sorted_mp_cube",
        "Fig 7.2: additional traffic on a 10-cube",
        ["k", "runs", "sorted-MP", "multi-unicast", "broadcast"],
        rows,
    )
    for k, _, mp, uni, bc in rows:
        # at very small k the Hamilton-order walk statistically ties
        # separate unicasts on a hypercube; the win is clear for k >= 50
        if k >= 50:
            assert mp < uni
        else:
            assert mp <= uni * 1.15
        assert abs(bc - (1023 - k)) < 1e-9
