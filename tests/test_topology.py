"""Unit and property tests for the topology substrates (Ch. 2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import GridGraph, Hypercube, KAryNCube, Mesh2D, Mesh3D, popcount, rectangular_grid

from conftest import bfs_distance


class TestMesh2D:
    def test_basic_counts(self):
        m = Mesh2D(4, 3)
        assert m.num_nodes == 12
        assert len(list(m.nodes())) == 12
        # 2*( (w-1)*h + w*(h-1) ) directed channels
        assert m.num_channels == 2 * ((3 * 3) + (4 * 2))

    def test_corner_edge_center_degrees(self):
        m = Mesh2D(4, 3)
        assert m.degree((0, 0)) == 2
        assert m.degree((1, 0)) == 3
        assert m.degree((1, 1)) == 4

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 3)

    def test_index_roundtrip(self):
        m = Mesh2D(5, 7)
        for i, v in enumerate(m.nodes()):
            assert m.index(v) == i
            assert m.node_at(i) == v

    def test_is_node(self):
        m = Mesh2D(3, 3)
        assert m.is_node((2, 2))
        assert not m.is_node((3, 0))
        assert not m.is_node((0, -1))
        assert not m.is_node("x")
        assert not m.is_node((0, 0, 0))

    def test_distance_matches_bfs(self):
        m = Mesh2D(4, 3)
        nodes = list(m.nodes())
        for u in nodes:
            for v in nodes:
                if u != v:
                    assert m.distance(u, v) == bfs_distance(m, u, v)

    def test_diameter(self):
        assert Mesh2D(4, 3).diameter() == 5
        assert Mesh2D(6, 6).diameter() == 10

    def test_dimension_ordered_path_is_x_first(self):
        m = Mesh2D(6, 6)
        path = m.dimension_ordered_path((1, 1), (4, 3))
        assert path == [(1, 1), (2, 1), (3, 1), (4, 1), (4, 2), (4, 3)]

    def test_dimension_ordered_path_length(self):
        m = Mesh2D(8, 8)
        rng = random.Random(1)
        for _ in range(50):
            u = (rng.randrange(8), rng.randrange(8))
            v = (rng.randrange(8), rng.randrange(8))
            path = m.dimension_ordered_path(u, v)
            assert len(path) - 1 == m.distance(u, v)
            assert m.path_length(path) == m.distance(u, v)

    def test_path_length_rejects_nonadjacent(self):
        m = Mesh2D(3, 3)
        with pytest.raises(ValueError):
            m.path_length([(0, 0), (2, 0)])


class TestMesh3D:
    def test_counts_and_degree(self):
        m = Mesh3D(3, 3, 3)
        assert m.num_nodes == 27
        assert m.degree((1, 1, 1)) == 6
        assert m.degree((0, 0, 0)) == 3

    def test_distance_matches_bfs(self):
        m = Mesh3D(3, 2, 2)
        nodes = list(m.nodes())
        for u in nodes:
            for v in nodes:
                assert m.distance(u, v) == (0 if u == v else bfs_distance(m, u, v))

    def test_index_roundtrip(self):
        m = Mesh3D(2, 3, 4)
        for i, v in enumerate(m.nodes()):
            assert m.index(v) == i
            assert m.node_at(i) == v

    def test_dimension_ordered_path(self):
        m = Mesh3D(3, 3, 3)
        p = m.dimension_ordered_path((0, 0, 0), (2, 1, 1))
        assert p[0] == (0, 0, 0) and p[-1] == (2, 1, 1)
        assert len(p) - 1 == 4


class TestHypercube:
    def test_counts(self):
        h = Hypercube(4)
        assert h.num_nodes == 16
        assert h.degree(0) == 4
        assert h.num_channels == 16 * 4

    def test_neighbors_differ_one_bit(self):
        h = Hypercube(5)
        for v in [0, 7, 21, 31]:
            for w in h.neighbors(v):
                assert popcount(v ^ w) == 1

    def test_distance_matches_bfs(self):
        h = Hypercube(4)
        for u in range(16):
            for v in range(16):
                assert h.distance(u, v) == (0 if u == v else bfs_distance(h, u, v))

    def test_diameter_is_n(self):
        assert Hypercube(4).diameter() == 4

    def test_ecube_path(self):
        h = Hypercube(4)
        p = h.dimension_ordered_path(0b0000, 0b1010)
        assert p == [0b0000, 0b0010, 0b1010]

    def test_ecube_path_random(self):
        h = Hypercube(6)
        rng = random.Random(2)
        for _ in range(50):
            u, v = rng.randrange(64), rng.randrange(64)
            p = h.dimension_ordered_path(u, v)
            assert p[0] == u and p[-1] == v
            assert len(p) - 1 == h.distance(u, v)
            h.path_length(p)

    def test_bits_roundtrip(self):
        h = Hypercube(4)
        assert h.bits(0b1100) == "1100"
        assert h.from_bits("1100") == 0b1100
        with pytest.raises(ValueError):
            h.from_bits("110")

    def test_subcube_projection(self):
        h = Hypercube(6)
        # Example from §5.4 (6-cube ST): nearest node to 000001 on
        # shortest paths between 000110 and 010101 is 000101.
        a = h.from_bits("000110")
        b = h.from_bits("010101")
        t = h.from_bits("000001")
        assert h.bits(h.subcube_projection(t, a, b)) == "000101"

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    def test_subcube_projection_properties(self, a, b, t):
        h = Hypercube(6)
        v = h.subcube_projection(t, a, b)
        # v lies on a shortest path between a and b:
        assert h.distance(a, v) + h.distance(v, b) == h.distance(a, b)
        # and no node on such a path is closer to t (check via the
        # distance formula: d(t, v) = hamming distance restricted).
        assert h.distance(t, v) <= min(h.distance(t, a), h.distance(t, b))


class TestKAryNCube:
    def test_counts(self):
        t = KAryNCube(4, 2)
        assert t.num_nodes == 16
        assert t.degree((0, 0)) == 4

    def test_k2_matches_hypercube_distances(self):
        t = KAryNCube(2, 3)
        h = Hypercube(3)
        for u in range(8):
            for v in range(8):
                ut = tuple(int(b) for b in format(u, "03b"))
                vt = tuple(int(b) for b in format(v, "03b"))
                assert t.distance(ut, vt) == h.distance(u, v)

    def test_wraparound_distance(self):
        t = KAryNCube(5, 2)
        assert t.distance((0, 0), (4, 0)) == 1
        assert t.distance((0, 0), (2, 2)) == 4
        assert t.distance((0, 0), (3, 3)) == 4

    def test_distance_matches_bfs(self):
        t = KAryNCube(4, 2)
        nodes = list(t.nodes())
        for u in nodes:
            for v in nodes:
                assert t.distance(u, v) == (0 if u == v else bfs_distance(t, u, v))

    def test_index_roundtrip(self):
        t = KAryNCube(3, 3)
        for i, v in enumerate(t.nodes()):
            assert t.index(v) == i
            assert t.node_at(i) == v

    def test_dimension_ordered_path_takes_short_arc(self):
        t = KAryNCube(6, 2)
        p = t.dimension_ordered_path((0, 0), (5, 0))
        assert p == [(0, 0), (5, 0)]

    def test_dimension_ordered_path_random(self):
        t = KAryNCube(5, 2)
        rng = random.Random(3)
        for _ in range(30):
            u = (rng.randrange(5), rng.randrange(5))
            v = (rng.randrange(5), rng.randrange(5))
            p = t.dimension_ordered_path(u, v)
            assert p[0] == u and p[-1] == v
            assert len(p) - 1 == t.distance(u, v)


class TestGridGraph:
    def test_rectangular(self):
        g = rectangular_grid(3, 2)
        assert len(g) == 6
        assert g.num_edges() == 7

    def test_neighbors_and_contains(self):
        g = GridGraph([(0, 0), (1, 0), (1, 1)])
        assert (0, 0) in g
        assert (2, 2) not in g
        assert set(g.neighbors((1, 0))) == {(0, 0), (1, 1)}

    def test_connectivity(self):
        assert GridGraph([(0, 0), (1, 0)]).is_connected()
        assert not GridGraph([(0, 0), (2, 0)]).is_connected()

    def test_bfs_levels(self):
        g = rectangular_grid(3, 3)
        levels = g.bfs_levels((0, 0))
        assert levels[0] == [(0, 0)]
        assert set(levels[1]) == {(1, 0), (0, 1)}
        assert len(levels) == 5

    def test_bfs_levels_disconnected_raises(self):
        g = GridGraph([(0, 0), (5, 5)])
        with pytest.raises(ValueError):
            g.bfs_levels((0, 0))

    def test_hamiltonian_cycle_rectangle(self):
        g = rectangular_grid(4, 3)
        cyc = g.hamiltonian_cycle()
        assert cyc is not None
        assert len(cyc) == 13  # 12 nodes + closing repeat
        assert cyc[0] == cyc[-1]
        assert len(set(cyc[:-1])) == 12

    def test_no_hamiltonian_cycle_odd_odd(self):
        # bipartite parity argument: 3x3 grid has no Hamilton cycle
        assert rectangular_grid(3, 3).hamiltonian_cycle() is None

    def test_hamiltonian_path(self):
        g = rectangular_grid(3, 3)
        p = g.hamiltonian_path(start=(0, 0))
        assert p is not None and len(p) == 9 and p[0] == (0, 0)

    def test_l_shape_example(self):
        # The 8-node grid of Fig. 4.2-like shape still has a Hamilton path.
        g = GridGraph([(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1), (0, 2), (1, 2)])
        assert g.is_connected()
        p = g.hamiltonian_path()
        assert p is not None and len(p) == 8

    def test_bounding_box(self):
        g = GridGraph([(2, 3), (3, 3), (3, 4)])
        assert g.bounding_box() == ((2, 3), (3, 4))
