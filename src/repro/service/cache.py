"""LRU route-plan cache with honest hit-rate counters.

Keys are ``(topology_repr, scheme, source, frozenset(destinations))``
— the issue's ``(topology, scheme, destinations)`` key plus the
source, because every Chapter 3 route model is rooted at the source
(two requests differing only in source take different routes).  Values
are terminal :class:`~repro.service.protocol.RouteResponse` objects;
:meth:`RouteResponse.with_id` re-keys a cached plan under the new
request's correlation id, so ``cache_hit=True`` responses are replayed
plans, never shared mutable state.

Mirrors the counter style of
:class:`repro.topology.oracle.CacheStats`: hits / misses / evictions
plus a derived ``hit_rate``, all exported by :meth:`stats` for the
service drain report and ``BENCH_service.json``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable
from typing import Any

from .protocol import RouteResponse

__all__ = ["CacheKey", "RoutePlanCache", "route_key"]

#: ``(topology_repr, scheme, source, frozenset(destinations))``.
CacheKey = tuple[str, str, Any, frozenset[Any]]


def route_key(
    topology_repr: str, scheme: str, source: Any, destinations: Iterable[Any]
) -> CacheKey:
    """The canonical cache key (destination order must not matter)."""
    return (topology_repr, scheme, source, frozenset(destinations))


class RoutePlanCache:
    """A bounded LRU map from route keys to terminal responses.

    Thread-safe: the service front end probes it at admission (so hot
    requests never enter the queue) while the dispatcher thread fills
    it, so every operation takes the internal lock.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity cannot be negative, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, RouteResponse] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> RouteResponse | None:
        """The cached value (refreshed to most-recently-used) or
        ``None``; every call counts as a hit or a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: CacheKey) -> RouteResponse | None:
        """The cached value (refreshed) or ``None``, without touching
        the hit/miss counters — for the dispatcher's second probe of a
        request already counted as a miss at admission."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: CacheKey, value: RouteResponse) -> None:
        """Insert/refresh an entry, evicting the least recently used
        one past capacity.  A zero-capacity cache stores nothing (every
        lookup is a miss) but keeps counting."""
        with self._lock:
            if self.capacity == 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        """Counters snapshot for reports and benchmarks."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
                "hit_rate": self.hits / total if total else 0.0,
            }
