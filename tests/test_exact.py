"""Tests for the exact optimal multicast solvers (Ch. 4) and
optimality-gap sanity checks against the Chapter 5 heuristics."""

from __future__ import annotations

import random


from repro.exact import (
    held_karp_closed_walk_cost,
    held_karp_walk_cost,
    minimal_steiner_tree_cost,
    optimal_multicast_cycle,
    optimal_multicast_path,
    optimal_multicast_star_cost,
    optimal_multicast_tree_cost,
    shortest_path_dag,
    star_lower_bound,
)
from repro.heuristics import (
    divided_greedy_route,
    greedy_st_route,
    sorted_mc_route,
    sorted_mp_route,
    xfirst_route,
)
from repro.models import MulticastRequest, random_multicast
from repro.topology import Hypercube, Mesh2D


class TestHeldKarpBounds:
    def test_single_destination(self):
        m = Mesh2D(5, 5)
        assert held_karp_walk_cost(m, (0, 0), [(3, 4)]) == 7
        assert held_karp_closed_walk_cost(m, (0, 0), [(3, 4)]) == 14

    def test_two_destinations_order_matters(self):
        m = Mesh2D(7, 1)
        # source in the middle: visiting near side first is optimal
        assert held_karp_walk_cost(m, (3, 0), [(0, 0), (6, 0)]) == 9

    def test_walk_bound_below_path(self):
        m = Mesh2D(4, 4)
        rng = random.Random(1)
        for _ in range(10):
            req = random_multicast(m, 3, rng)
            walk = held_karp_walk_cost(m, req.source, req.destinations)
            assert walk <= optimal_multicast_path(req).traffic

    def test_empty(self):
        m = Mesh2D(3, 3)
        assert held_karp_walk_cost(m, (0, 0), []) == 0
        assert held_karp_closed_walk_cost(m, (0, 0), []) == 0


class TestOptimalPathCycle:
    def test_omp_simple_line(self):
        m = Mesh2D(5, 1)
        req = MulticastRequest(m, (0, 0), ((4, 0), (2, 0)))
        assert optimal_multicast_path(req).traffic == 4

    def test_omp_beats_or_ties_sorted_mp(self):
        m = Mesh2D(4, 4)
        rng = random.Random(2)
        for _ in range(8):
            req = random_multicast(m, 3, rng)
            opt = optimal_multicast_path(req)
            heur = sorted_mp_route(req)
            assert opt.traffic <= heur.traffic
            opt.validate(req)

    def test_omc_valid_and_bounded(self):
        m = Mesh2D(4, 4)
        rng = random.Random(3)
        for _ in range(5):
            req = random_multicast(m, 3, rng)
            opt = optimal_multicast_cycle(req)
            opt.validate(req)
            assert opt.traffic <= sorted_mc_route(req).traffic
            assert opt.traffic >= held_karp_closed_walk_cost(
                m, req.source, req.destinations
            )

    def test_omp_on_hypercube(self):
        h = Hypercube(3)
        req = MulticastRequest(h, 0, (0b111, 0b011))
        opt = optimal_multicast_path(req)
        assert opt.traffic == 3  # 000 -> 001 -> 011 -> 111

    def test_sorted_mp_optimality_gap_small(self):
        """On a 4x4 mesh with 3 destinations the heuristic stays within
        3x of optimal (it is often optimal; the Hamilton-cycle
        ordering can take detours)."""
        m = Mesh2D(4, 4)
        rng = random.Random(4)
        for _ in range(10):
            req = random_multicast(m, 3, rng)
            assert sorted_mp_route(req).traffic <= 3 * optimal_multicast_path(req).traffic


class TestMinimalSteinerTree:
    def test_collinear(self):
        m = Mesh2D(6, 1)
        req = MulticastRequest(m, (0, 0), ((3, 0), (5, 0)))
        assert minimal_steiner_tree_cost(req) == 5

    def test_l_corner(self):
        m = Mesh2D(4, 4)
        req = MulticastRequest(m, (0, 0), ((2, 0), (0, 2)))
        assert minimal_steiner_tree_cost(req) == 4

    def test_plus_shape_steiner_point(self):
        """Three terminals around a cross share the centre: a genuine
        Steiner point saves length."""
        m = Mesh2D(3, 3)
        req = MulticastRequest(m, (1, 0), ((0, 1), (2, 1)))
        # via centre (1,1): 1 + 1 + 1 = 3
        assert minimal_steiner_tree_cost(req) == 3

    def test_greedy_st_gap(self):
        m = Mesh2D(5, 5)
        rng = random.Random(5)
        gaps = []
        for _ in range(15):
            req = random_multicast(m, 4, rng)
            opt = minimal_steiner_tree_cost(req)
            heur = greedy_st_route(req).traffic
            assert heur >= opt
            gaps.append(heur / opt)
        assert sum(gaps) / len(gaps) <= 1.5

    def test_hypercube_instance(self):
        h = Hypercube(4)
        rng = random.Random(6)
        for _ in range(5):
            req = random_multicast(h, 4, rng)
            opt = minimal_steiner_tree_cost(req)
            assert opt <= greedy_st_route(req).traffic
            assert opt >= max(
                h.distance(req.source, d) for d in req.destinations
            )


class TestOptimalMulticastTree:
    def test_dag_structure(self):
        m = Mesh2D(3, 3)
        dag = shortest_path_dag(m, (0, 0))
        assert set(dag[(0, 0)]) == {(1, 0), (0, 1)}
        assert dag[(2, 2)] == []

    def test_line(self):
        m = Mesh2D(5, 1)
        req = MulticastRequest(m, (0, 0), ((4, 0), (2, 0)))
        assert optimal_multicast_tree_cost(req) == 4

    def test_branching_saves(self):
        m = Mesh2D(3, 3)
        req = MulticastRequest(m, (1, 0), ((0, 2), (2, 2)))
        # share the segment (1,0)-(1,1)-? ; optimal is 5 edges:
        # (1,0)->(1,1)->(1,2) then branch to (0,2) and (2,2) = 4 edges? no:
        # (1,0)-(1,1)-(1,2)=2, +(0,2) +(2,2) = 4 total.
        assert optimal_multicast_tree_cost(req) == 4

    def test_omt_at_most_xfirst_and_divided_greedy(self):
        m = Mesh2D(5, 5)
        rng = random.Random(7)
        for _ in range(10):
            req = random_multicast(m, 4, rng)
            opt = optimal_multicast_tree_cost(req)
            assert opt <= xfirst_route(req).traffic
            assert opt <= divided_greedy_route(req).traffic

    def test_omt_at_least_steiner(self):
        """The shortest-path constraint can only increase cost."""
        m = Mesh2D(5, 5)
        rng = random.Random(8)
        for _ in range(10):
            req = random_multicast(m, 4, rng)
            assert optimal_multicast_tree_cost(req) >= minimal_steiner_tree_cost(req)

    def test_hypercube_omt(self):
        h = Hypercube(4)
        rng = random.Random(9)
        for _ in range(5):
            req = random_multicast(h, 4, rng)
            opt = optimal_multicast_tree_cost(req)
            from repro.heuristics import len_route

            assert opt <= len_route(req).traffic
            assert opt >= minimal_steiner_tree_cost(req)


class TestOptimalStar:
    def test_opposite_destinations_split(self):
        m = Mesh2D(7, 1)
        req = MulticastRequest(m, (3, 0), ((0, 0), (6, 0)))
        # one path: 3+6=9; two paths: 3+3=6
        assert optimal_multicast_star_cost(req) == 6

    def test_single_destination(self):
        m = Mesh2D(4, 4)
        req = MulticastRequest(m, (0, 0), ((3, 3),))
        assert optimal_multicast_star_cost(req) == 6

    def test_star_cost_bounds(self):
        m = Mesh2D(4, 4)
        rng = random.Random(10)
        for _ in range(6):
            req = random_multicast(m, 3, rng)
            cost = optimal_multicast_star_cost(req)
            assert cost >= star_lower_bound(req)
            assert cost <= optimal_multicast_path(req).traffic
