"""Hamiltonian labelings and cycles for hypercubes (§5.1, §6.3).

The label assignment function of §6.3,

    l(d_{n-1} ... d_0) = sum_i (c_i * ~d_i + ~c_i * d_i) * 2^i,
    c_{n-1} = 0,  c_{n-j} = d_{n-1} XOR ... XOR d_{n-j+1},

is exactly the inverse of the binary reflected Gray code: bit i of
``l(v)`` is the XOR of bits n-1..i of v, i.e. ``l(v)`` is the integer
whose Gray code is v.  Consecutive labels therefore differ in exactly
one address bit — a Hamiltonian path — and the routing function R
selects shortest paths under it (Lemma 6.4).

The same Gray sequence also provides the Hamilton cycle used by the
sorted MP/MC algorithm (fact F2; Table 5.3 reproduces it for the
4-cube).
"""

from __future__ import annotations

from ..topology.base import Node
from ..topology.hypercube import Hypercube
from .base import Labeling


def gray_encode(i: int) -> int:
    """The i-th codeword of the binary reflected Gray code."""
    return i ^ (i >> 1)


def gray_decode(g: int) -> int:
    """Position of codeword ``g`` in the binary reflected Gray code
    (the label assignment function l of §6.3)."""
    value = 0
    while g:
        value ^= g
        g >>= 1
    return value


class GrayCodeLabeling(Labeling):
    """The shortest-path-preserving Hamiltonian labeling of §6.3."""

    def __init__(self, cube: Hypercube):
        super().__init__(cube)
        self.cube = cube

    def label(self, v: Node) -> int:
        return gray_decode(v)

    def node_of(self, label: int) -> Node:
        return gray_encode(label)


def hypercube_hamiltonian_cycle(cube: Hypercube) -> list[Node]:
    """The reflected-Gray-code Hamilton cycle of an n-cube (fact F2).

    Returns the open node sequence; consecutive codewords (and the wrap
    from last to first) differ in one bit.  Reproduces Table 5.3 for the
    4-cube.
    """
    return [gray_encode(i) for i in range(cube.num_nodes)]
