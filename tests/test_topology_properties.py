"""Property-based invariant tests for all topology substrates."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Hypercube, KAryNCube, Mesh2D, Mesh3D

TOPOLOGIES = {
    "mesh2d": Mesh2D(6, 5),
    "mesh3d": Mesh3D(3, 4, 2),
    "cube": Hypercube(5),
    "torus": KAryNCube(4, 2),
}


@pytest.fixture(params=sorted(TOPOLOGIES), name="topo")
def _topo(request):
    return TOPOLOGIES[request.param]


def pick(topo, rng):
    return topo.node_at(rng.randrange(topo.num_nodes))


class TestMetricProperties:
    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_symmetry_and_identity(self, seed):
        rng = random.Random(seed)
        for topo in TOPOLOGIES.values():
            u, v = pick(topo, rng), pick(topo, rng)
            assert topo.distance(u, v) == topo.distance(v, u)
            assert topo.distance(u, u) == 0

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, seed):
        rng = random.Random(seed)
        for topo in TOPOLOGIES.values():
            u, v, w = (pick(topo, rng) for _ in range(3))
            assert topo.distance(u, w) <= topo.distance(u, v) + topo.distance(v, w)

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_neighbors_at_distance_one(self, seed):
        rng = random.Random(seed)
        for topo in TOPOLOGIES.values():
            u = pick(topo, rng)
            for v in topo.neighbors(u):
                assert topo.distance(u, v) == 1
                assert u in topo.neighbors(v)

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_distance_drops_by_one_along_some_neighbor(self, seed):
        rng = random.Random(seed)
        for topo in TOPOLOGIES.values():
            u, v = pick(topo, rng), pick(topo, rng)
            if u == v:
                continue
            assert min(topo.distance(w, v) for w in topo.neighbors(u)) == topo.distance(u, v) - 1


class TestStructuralProperties:
    def test_index_bijection(self, topo):
        seen = set()
        for i, v in enumerate(topo.nodes()):
            assert topo.index(v) == i
            assert topo.node_at(i) == v
            seen.add(v)
        assert len(seen) == topo.num_nodes

    def test_channel_count_consistency(self, topo):
        assert topo.num_channels == len(list(topo.channels()))
        assert topo.num_channels == 2 * len(list(topo.undirected_edges()))

    def test_dimension_ordered_paths_shortest(self, topo):
        rng = random.Random(1)
        for _ in range(30):
            u, v = pick(topo, rng), pick(topo, rng)
            p = topo.dimension_ordered_path(u, v)
            assert p[0] == u and p[-1] == v
            assert len(p) - 1 == topo.distance(u, v)
            assert len(set(p)) == len(p)

    def test_diameter_attained(self, topo):
        d = topo.diameter()
        nodes = list(topo.nodes())
        assert any(
            topo.distance(u, v) == d for u in nodes[:8] for v in nodes
        ) or d == max(
            topo.distance(u, v) for u in nodes for v in nodes
        )

    def test_is_node_rejects_garbage(self, topo):
        for bad in (None, "x", -1, (999,), (1, 2, 3, 4), 1.5):
            assert not topo.is_node(bad)

    def test_validate_multicast_set_passes_valid(self, topo):
        rng = random.Random(2)
        nodes = [topo.node_at(i) for i in rng.sample(range(topo.num_nodes), 4)]
        topo.validate_multicast_set(nodes[0], nodes[1:])


class TestDegreeBounds:
    def test_mesh2d_degrees(self):
        m = Mesh2D(6, 5)
        degrees = {m.degree(v) for v in m.nodes()}
        assert degrees == {2, 3, 4}

    def test_mesh3d_degrees(self):
        m = Mesh3D(3, 3, 3)
        degrees = {m.degree(v) for v in m.nodes()}
        assert degrees == {3, 4, 5, 6}

    def test_cube_regular(self):
        h = Hypercube(5)
        assert {h.degree(v) for v in h.nodes()} == {5}

    def test_torus_regular(self):
        t = KAryNCube(4, 2)
        assert {t.degree(v) for v in t.nodes()} == {4}

    def test_small_torus_degree(self):
        # radix 2 wraps coincide with direct links: degree n, not 2n
        t = KAryNCube(2, 3)
        assert {t.degree(v) for v in t.nodes()} == {3}
