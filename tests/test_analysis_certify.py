"""The deadlock certifier: certificates, refutations, artifacts."""

import dataclasses
import json

import pytest

from repro import registry
from repro.analysis.certify import (
    Certificate,
    CertificationError,
    Counterexample,
    certificate_status,
    certify_all,
    certify_claim,
    certify_spec,
    fig_6_1_counterexample,
    fig_6_4_counterexample,
    load_artifact,
    refute,
    verify_counterexample,
)
from repro.models.request import MulticastRequest
from repro.topology import Mesh2D


def _smallest_rep(spec):
    from repro.analysis.certify import REPRESENTATIVE_TOPOLOGIES

    families = spec.topologies or ("mesh2d", "hypercube")
    return REPRESENTATIVE_TOPOLOGIES[families[0]][0]


def test_every_deadlock_free_spec_certifies():
    checked = 0
    for spec in registry.specs(deadlock_free=True):
        cert = certify_claim(spec, _smallest_rep(spec))
        assert isinstance(cert, Certificate), spec.name
        if spec.name != "vct-tree":  # VCT buffers packets: empty CDG
            assert cert.order, spec.name
        checked += 1
    assert checked >= 5  # dual-path family, fixed/multi-path, vct, xfirst-tree


def test_certificate_round_trip(tmp_path):
    for spec in registry.specs(deadlock_free=True, include_families=False):
        cert = certify_claim(spec, _smallest_rep(spec))
        path = tmp_path / cert.filename
        path.write_text(json.dumps(cert.to_json()))
        loaded = load_artifact(path)
        assert isinstance(loaded, Certificate)
        assert loaded == cert
        loaded.revalidate()  # recomputes the CDG and re-checks the order


def test_stale_certificate_is_detected():
    spec = registry.get("dual-path")
    cert = certify_claim(spec, _smallest_rep(spec))
    stale = dataclasses.replace(cert, edge_digest="0" * 64)
    with pytest.raises(CertificationError, match="stale"):
        stale.revalidate()
    # a corrupted order is caught even with the right digest
    broken = dataclasses.replace(cert, order=tuple(reversed(cert.order)))
    with pytest.raises(CertificationError, match="order"):
        broken.revalidate()


def test_fig_6_1_refutation():
    cx = fig_6_1_counterexample()
    assert cx.scheme == "ecube-tree"
    assert cx.construction == "fig-6.1"
    assert cx.cycle[0] == cx.cycle[-1] and len(cx.cycle) >= 3
    assert len(cx.witnesses) == 2  # both broadcasts are needed
    verify_counterexample(cx)


def test_fig_6_4_refutation_is_the_known_two_channel_cycle():
    cx = fig_6_4_counterexample()
    assert cx.scheme == "xfirst"
    assert cx.construction == "fig-6.4"
    assert set(cx.cycle) == {"((1, 1), (0, 1))", "((2, 1), (3, 1))"}
    assert len(cx.cycle) == 3  # the minimized 2-cycle, closed
    verify_counterexample(cx)


def test_refutation_round_trip(tmp_path):
    cx = fig_6_4_counterexample()
    path = tmp_path / cx.filename
    path.write_text(json.dumps(cx.to_json()))
    loaded = load_artifact(path)
    assert isinstance(loaded, Counterexample)
    assert loaded == cx
    verify_counterexample(loaded)


def test_refute_requires_a_cyclic_cdg():
    mesh = Mesh2D(4, 3)
    # a single X-first multicast cannot deadlock with itself
    req = MulticastRequest(mesh, (0, 0), ((3, 2),))
    with pytest.raises(CertificationError, match="acyclic"):
        refute("xfirst", "mesh:4x3", [req])


def test_refute_minimizes_the_witness_set():
    mesh = Mesh2D(4, 3)
    # the two Fig. 6.4 witnesses plus two irrelevant multicasts: the
    # greedy minimization must drop the extras
    extras = [
        MulticastRequest(mesh, (0, 0), ((1, 0),)),
        MulticastRequest(mesh, (3, 2), ((2, 2),)),
    ]
    cx = refute(
        "xfirst",
        "mesh:4x3",
        extras
        + [
            MulticastRequest(mesh, (1, 1), ((0, 2), (3, 1))),
            MulticastRequest(mesh, (2, 1), ((0, 1), (3, 0))),
        ],
    )
    assert len(cx.witnesses) == 2
    verify_counterexample(cx)


def test_certify_spec_refutes_false_claims():
    spec = registry.get("ecube-tree")
    assert spec.deadlock_free is False
    artifacts = certify_spec(spec)
    assert len(artifacts) == 1
    assert isinstance(artifacts[0], Counterexample)


def test_certify_all_writes_artifacts(tmp_path):
    artifacts, failures = certify_all(["dual-path", "ecube-tree"], out_dir=tmp_path)
    assert failures == []
    kinds = {a.kind for a in artifacts}
    assert kinds == {"acyclicity-certificate", "deadlock-counterexample"}
    for artifact in artifacts:
        loaded = load_artifact(tmp_path / artifact.filename)
        assert loaded == artifact


def test_committed_artifacts_are_current():
    # the repository's checked-in certificates must re-validate against
    # the code as it is now (stale artifacts fail CI)
    from pathlib import Path

    cert_dir = Path(__file__).parent.parent / "analysis" / "certificates"
    assert cert_dir.is_dir(), "analysis/certificates/ is missing"
    count = 0
    for path in sorted(cert_dir.glob("*.json")):
        artifact = load_artifact(path)
        if isinstance(artifact, Certificate):
            # revalidating every large CDG is slow; spot-check small ones
            if len(artifact.order) <= 200:
                artifact.revalidate()
        else:
            verify_counterexample(artifact)
        count += 1
    assert count >= 20


def test_deadlock_free_claim_requires_certificate_hook():
    with pytest.raises(ValueError, match="cdg_certificate"):
        registry.AlgorithmSpec(
            name="bogus-claim",
            kind="dynamic-worm",
            worm_style="star",
            deadlock_free=True,
        )


def test_certificate_status_in_scheme_table():
    assert certificate_status(registry.get("dual-path")) == "certified"
    assert certificate_status(registry.get("ecube-tree")) == "refuted"
    assert certificate_status(registry.get("kmb")) == "n/a"
    table = registry.scheme_table_markdown()
    assert "| certified |" in table.splitlines()[0]
