#!/usr/bin/env python
"""Image-processing region exchange — the pattern-recognition workload
of §1.1 / [10][14].

Parallel component labeling partitions an image into tiles, one per
processor of a 2D mesh.  When a labeled object spans several tiles, the
processor that resolves a label must multicast the update to every
processor whose tile touches the object — a multicast whose destination
set is a *spatial neighbourhood*, not a uniform sample.  This example
synthesises objects as rectangles of tiles, builds the induced
multicast sets, and compares routing schemes on locality-heavy traffic,
where the tradeoffs differ visibly from the uniform-traffic study of
Chapter 7 (short distances make path detours relatively costlier).

Run:  python examples/image_region_exchange.py
"""

from __future__ import annotations

import random
from statistics import mean

from repro.heuristics import greedy_st_route, multiple_unicast_route, xfirst_route
from repro.models import MulticastRequest
from repro.sim import SimConfig, run_dynamic
from repro.sim.traffic import Router
from repro.topology import Mesh2D
from repro.wormhole import dual_path_route, multi_path_route


def object_multicasts(mesh: Mesh2D, rng: random.Random, num_objects: int):
    """Each object covers a random rectangle of tiles; its owner (the
    top-left tile) multicasts label updates to the other tiles."""
    requests = []
    for _ in range(num_objects):
        w = rng.randint(2, 4)
        h = rng.randint(2, 4)
        x0 = rng.randrange(mesh.width - w + 1)
        y0 = rng.randrange(mesh.height - h + 1)
        tiles = [(x0 + i, y0 + j) for i in range(w) for j in range(h)]
        src = tiles[0]
        requests.append(MulticastRequest(mesh, src, tuple(tiles[1:])))
    return requests


class RegionRouter(Router):
    """A Router that replays a fixed list of spatial requests instead of
    uniform destinations (run_dynamic still draws sources/timing)."""

    def __init__(self, topology, scheme, requests):
        super().__init__(topology, scheme)
        self._requests = list(requests)
        self._i = 0

    def __call__(self, request):
        # ignore the uniform request; substitute the next object update
        real = self._requests[self._i % len(self._requests)]
        self._i += 1
        return super().__call__(real)


def main() -> None:
    rng = random.Random(77)
    mesh = Mesh2D(16, 16)
    requests = object_multicasts(mesh, rng, 400)
    ks = [r.k for r in requests]
    print(
        f"Region exchange on {mesh}: {len(requests)} object updates, "
        f"{min(ks)}..{max(ks)} destination tiles (mean {mean(ks):.1f})\n"
    )

    print("Static traffic per update (spatially local destinations):")
    for name, algo in (
        ("multiple one-to-one", multiple_unicast_route),
        ("greedy ST", greedy_st_route),
        ("X-first tree", xfirst_route),
        ("dual-path", dual_path_route),
        ("multi-path", multi_path_route),
    ):
        print(f"  {name:<22} {mean(algo(r).traffic for r in requests):6.2f}")

    print("\nDynamic latency replaying updates as Poisson traffic:")
    cfg = SimConfig(num_messages=400, mean_interarrival=250e-6, seed=13)
    for scheme in ("dual-path", "multi-path", "fixed-path"):
        router = RegionRouter(mesh, scheme, requests)
        r = run_dynamic(mesh, scheme, cfg, router=router)
        print(
            f"  {scheme:<12} mean latency {r.mean_latency * 1e6:7.2f} us "
            f"(+/- {r.latency.ci_halfwidth * 1e6:.2f})"
        )


if __name__ == "__main__":
    main()
