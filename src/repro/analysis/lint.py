"""Repo-specific AST lint pass: ``python -m repro lint``.

Generic linters (the ruff families in ``pyproject.toml``) cannot see
*project* conventions — that scheme dispatch must flow through
:mod:`repro.registry`, that simulation/fault code must never construct
an unseeded RNG (replications derive every stream from the config
seed), that :class:`~repro.sim.kernel.LegacyEnvironment` is reserved
for the parity layer, and that worker/retry paths must never swallow
``KeyboardInterrupt`` with a bare ``except``.  This module enforces
them with a small plugin-style rule API: a rule is one decorated
generator, so future PRs add checks in ~20 lines::

    from repro.analysis.lint import rule

    @rule("my-rule", "what it enforces")
    def my_rule(ctx):
        for node in ctx.walk(ast.Call):
            if looks_wrong(node):
                yield node, "explain the violation"

Suppression: append ``# lint: ignore[rule-id]`` (or a blanket
``# lint: ignore``) to the offending line.

Exit codes of the CLI front end: 0 clean, 1 findings.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FileContext",
    "LintFinding",
    "Rule",
    "lint_file",
    "lint_paths",
    "rule",
    "rules",
]

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[(?P<ids>[\w\-, ]+)\])?")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    _walked: dict = field(default_factory=dict, repr=False)

    def walk(self, *types: type) -> Iterator[ast.AST]:
        """All AST nodes of the given types (cached single traversal)."""
        nodes = self._walked.get("all")
        if nodes is None:
            nodes = self._walked["all"] = list(ast.walk(self.tree))
        for node in nodes:
            if not types or isinstance(node, types):
                yield node

    def module_aliases(self, module: str) -> set[str]:
        """Local names bound to ``module`` by plain imports
        (``import random`` / ``import numpy as np``)."""
        aliases = set()
        for node in self.walk(ast.Import):
            for item in node.names:
                if item.name == module:
                    aliases.add(item.asname or item.name)
        return aliases

    def in_file(self, *suffixes: str) -> bool:
        """Whether this file's path ends with one of the given
        ``dir/file.py`` suffixes (posix matching)."""
        return any(self.relpath.endswith(s) for s in suffixes)


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: ``check(ctx)`` yields
    ``(node_or_line, message)`` violations."""

    id: str
    description: str
    check: Callable[[FileContext], Iterable[tuple]]


_RULES: dict[str, Rule] = {}


def rule(rule_id: str, description: str):
    """Decorator registering a lint rule (the plugin API)."""

    def decorate(fn: Callable) -> Callable:
        if rule_id in _RULES:
            raise ValueError(f"lint rule {rule_id!r} is already registered")
        _RULES[rule_id] = Rule(rule_id, description, fn)
        return fn

    return decorate


def rules() -> list[Rule]:
    """All registered rules, sorted by id."""
    return sorted(_RULES.values(), key=lambda r: r.id)


# ----------------------------------------------------------------------
# The rules.
# ----------------------------------------------------------------------


def _scheme_names() -> frozenset:
    """Registered scheme names (canonical + aliases), cached."""
    global _SCHEME_NAMES
    if _SCHEME_NAMES is None:
        from .. import registry

        _SCHEME_NAMES = frozenset(registry.known_names())
    return _SCHEME_NAMES


_SCHEME_NAMES: frozenset | None = None


@rule(
    "no-registry-bypass",
    "scheme dispatch must resolve through repro.registry, never by "
    "comparing names against string literals",
)
def no_registry_bypass(ctx: FileContext) -> Iterator[tuple]:
    if ctx.in_file("repro/registry.py"):
        return
    names = _scheme_names()

    def literal_schemes(node) -> list[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value] if node.value in names else []
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return [s for e in node.elts for s in literal_schemes(e)]
        return []

    for node in ctx.walk(ast.Compare):
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
                continue
            hits = literal_schemes(comparator) + literal_schemes(node.left)
            if hits:
                yield node, (
                    f"comparison against scheme name(s) {sorted(set(hits))} — "
                    "dispatch on registry capabilities (worm_style/kind) instead"
                )


#: module-level ``random`` functions that mutate the hidden global RNG.
_GLOBAL_RNG_FNS = frozenset(
    {
        "random", "randrange", "randint", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "seed", "getrandbits", "triangular", "vonmisesvariate",
    }
)


@rule(
    "no-unseeded-rng",
    "sim/fault code must derive every RNG from an explicit seed — no "
    "random.Random() without arguments, no global random/numpy.random calls",
)
def no_unseeded_rng(ctx: FileContext) -> Iterator[tuple]:
    random_aliases = ctx.module_aliases("random")
    numpy_aliases = ctx.module_aliases("numpy") | ctx.module_aliases("numpy.random")
    random_class_aliases = set()
    for node in ctx.walk(ast.ImportFrom):
        if node.module == "random":
            bad = sorted(
                item.name for item in node.names if item.name in _GLOBAL_RNG_FNS
            )
            if bad:
                yield node, f"imports global-RNG functions {bad} from random"
            for item in node.names:
                if item.name == "Random":
                    random_class_aliases.add(item.asname or item.name)
    for node in ctx.walk(ast.Call):
        fn = node.func
        # from random import Random; Random()  (seedless via the alias)
        if (
            isinstance(fn, ast.Name)
            and fn.id in random_class_aliases
            and not node.args
            and not node.keywords
        ):
            yield node, "Random() constructed without a seed"
        if not isinstance(fn, ast.Attribute) or not isinstance(fn.value, (ast.Name, ast.Attribute)):
            continue
        # random.Random() with no seed / random.<stateful>()
        if isinstance(fn.value, ast.Name) and fn.value.id in random_aliases:
            if fn.attr == "Random" and not node.args and not node.keywords:
                yield node, "random.Random() constructed without a seed"
            elif fn.attr in _GLOBAL_RNG_FNS:
                yield node, f"global RNG call random.{fn.attr}() — use a seeded random.Random"
        # numpy.random.<fn>() globals and unseeded default_rng()
        value = fn.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in numpy_aliases
        ):
            if fn.attr == "default_rng" and not node.args and not node.keywords:
                yield node, "numpy default_rng() constructed without a seed"
            elif fn.attr not in ("default_rng", "Generator", "SeedSequence", "PCG64"):
                yield node, f"global numpy.random.{fn.attr}() — use a seeded Generator"


@rule(
    "no-legacy-environment",
    "LegacyEnvironment is the parity baseline; only the kernel module, "
    "the sim package re-export and the parity layer may reference it",
)
def no_legacy_environment(ctx: FileContext) -> Iterator[tuple]:
    if ctx.in_file("sim/kernel.py", "sim/__init__.py", "labeling/reference.py"):
        return
    for node in ctx.walk(ast.Name, ast.Attribute):
        name = node.id if isinstance(node, ast.Name) else node.attr
        if name == "LegacyEnvironment":
            yield node, "direct LegacyEnvironment use outside the parity layer"
    for node in ctx.walk(ast.ImportFrom):
        for item in node.names:
            if item.name == "LegacyEnvironment":
                yield node, "imports LegacyEnvironment outside the parity layer"


@rule(
    "no-bare-except",
    "bare `except:` swallows KeyboardInterrupt/SystemExit in worker and "
    "retry paths — name the exceptions (or use BaseException deliberately)",
)
def no_bare_except(ctx: FileContext) -> Iterator[tuple]:
    for node in ctx.walk(ast.ExceptHandler):
        if node.type is None:
            yield node, "bare except clause"


# ----------------------------------------------------------------------
# Concurrency-ownership rules (the service supervisor's threading
# discipline, statically enforced — see docs/VERIFICATION.md).
#
# Annotation grammar, read from line comments:
#   self._pending = []            # owned-by: dispatcher
#   self._seq = 0                 # guarded-by: _lock
#   def _on_result(self, ...):    # thread: dispatcher
# ----------------------------------------------------------------------

_OWNED_RE = re.compile(r"#\s*owned-by:\s*dispatcher\b")
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")
_THREAD_RE = re.compile(r"#\s*thread:\s*dispatcher\b")

#: method names that mutate their receiver in place
_MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend",
        "insert", "pop", "popleft", "popitem", "remove", "reverse",
        "setdefault", "sort", "update",
    }
)


def _self_attr(node: ast.AST) -> str | None:
    """The attribute name if ``node`` is ``self.X`` (peeling
    ``self.X[...]`` subscripts), else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_self_attrs(node: ast.AST) -> Iterator[str]:
    """``self.X`` attributes this single statement/expression mutates:
    assignments (plain, augmented, annotated, unpacking), deletions,
    and in-place mutator calls like ``self.X.append(...)``."""
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for elt in elts:
                attr = _self_attr(elt)
                if attr is not None:
                    yield attr
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                yield attr
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATOR_METHODS:
            attr = _self_attr(node.func.value)
            if attr is not None:
                yield attr


def _annotated_attrs(ctx: FileContext, klass: ast.ClassDef) -> tuple[set, dict]:
    """(owned attrs, guarded attr -> lock attr) declared in ``klass``
    via ``# owned-by: dispatcher`` / ``# guarded-by: <lock>`` comments
    on the attribute's assignment lines."""
    lines = ctx.source.splitlines()
    owned: set[str] = set()
    guarded: dict[str, str] = {}
    for node in ast.walk(klass):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is None or not (0 < node.lineno <= len(lines)):
                continue
            text = lines[node.lineno - 1]
            if _OWNED_RE.search(text):
                owned.add(attr)
            match = _GUARDED_RE.search(text)
            if match:
                guarded[attr] = match.group(1)
    return owned, guarded


def _methods(klass: ast.ClassDef) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        node
        for node in klass.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _dispatcher_tagged(ctx: FileContext, fn: ast.AST) -> bool:
    lines = ctx.source.splitlines()
    lineno = getattr(fn, "lineno", 0)
    return 0 < lineno <= len(lines) and bool(_THREAD_RE.search(lines[lineno - 1]))


@rule(
    "dispatcher-ownership",
    "state annotated `# owned-by: dispatcher` may only be mutated by "
    "methods annotated `# thread: dispatcher` (all other threads must "
    "go through the intake queue); untagged methods must not call "
    "dispatcher-thread methods",
)
def dispatcher_ownership(ctx: FileContext) -> Iterator[tuple]:
    for klass in ctx.walk(ast.ClassDef):
        owned, _ = _annotated_attrs(ctx, klass)
        if not owned:
            continue
        methods = _methods(klass)
        dispatcher_names = {
            fn.name for fn in methods if _dispatcher_tagged(ctx, fn)
        }
        for fn in methods:
            if fn.name == "__init__" or fn.name in dispatcher_names:
                # construction happens-before the dispatcher starts
                continue
            for node in ast.walk(fn):
                for attr in _mutated_self_attrs(node):
                    if attr in owned:
                        yield node, (
                            f"{klass.name}.{fn.name} mutates dispatcher-owned "
                            f"self.{attr} without a `# thread: dispatcher` tag"
                        )
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in dispatcher_names
                ):
                    yield node, (
                        f"{klass.name}.{fn.name} calls dispatcher-thread "
                        f"method {node.func.attr} from an untagged method"
                    )


#: constructors whose products are real concurrency locks (simulated
#: wormhole-channel acquire/release in repro.sim is *not* in scope)
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)


def _lock_bindings(ctx: FileContext) -> tuple[set, set]:
    """(attribute names, local names) bound to ``threading.Lock()``-
    style constructors anywhere in this file."""
    attrs: set[str] = set()
    names: set[str] = set()
    for node in ctx.walk(ast.Assign, ast.AnnAssign):
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        fn = value.func
        is_lock = (isinstance(fn, ast.Attribute) and fn.attr in _LOCK_FACTORIES) or (
            isinstance(fn, ast.Name) and fn.id in _LOCK_FACTORIES
        )
        if not is_lock:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute):
                attrs.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
    return attrs, names


@rule(
    "lock-discipline",
    "explicit .acquire()/.release() on a threading lock is forbidden — "
    "use a `with` block so the lock is released on every exit path",
)
def lock_discipline(ctx: FileContext) -> Iterator[tuple]:
    attrs, names = _lock_bindings(ctx)
    if not attrs and not names:
        return
    for node in ctx.walk(ast.Call):
        fn = node.func
        if not isinstance(fn, ast.Attribute) or fn.attr not in ("acquire", "release"):
            continue
        receiver = fn.value
        is_lock = (isinstance(receiver, ast.Attribute) and receiver.attr in attrs) or (
            isinstance(receiver, ast.Name) and receiver.id in names
        )
        if is_lock:
            yield node, (
                f"explicit .{fn.attr}() on a lock — use a `with` block"
            )


@rule(
    "guarded-mutation",
    "state annotated `# guarded-by: <lock>` may only be mutated inside "
    "a `with self.<lock>:` block (reads for monitoring are exempt)",
)
def guarded_mutation(ctx: FileContext) -> Iterator[tuple]:
    for klass in ctx.walk(ast.ClassDef):
        _, guarded = _annotated_attrs(ctx, klass)
        if not guarded:
            continue
        findings: list[tuple] = []

        def visit(node: ast.AST, held: frozenset, fn_name: str) -> None:
            if isinstance(node, ast.With):
                acquired = {
                    item.context_expr.attr
                    for item in node.items
                    if isinstance(item.context_expr, ast.Attribute)
                    and isinstance(item.context_expr.value, ast.Name)
                    and item.context_expr.value.id == "self"
                }
                held = held | frozenset(acquired)
            for attr in _mutated_self_attrs(node):
                lock = guarded.get(attr)
                if lock is not None and lock not in held:
                    findings.append(
                        (
                            node,
                            f"{klass.name}.{fn_name} mutates self.{attr} "
                            f"outside `with self.{lock}`",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, held, fn_name)

        for fn in _methods(klass):
            if fn.name == "__init__":
                continue  # construction happens-before any other thread
            for child in ast.iter_child_nodes(fn):
                visit(child, frozenset(), fn.name)
        yield from findings


# ----------------------------------------------------------------------
# Driver.
# ----------------------------------------------------------------------


def _suppressed(source_line: str, rule_id: str) -> bool:
    m = _IGNORE_RE.search(source_line)
    if not m:
        return False
    ids = m.group("ids")
    if ids is None:
        return True
    return rule_id in {s.strip() for s in ids.split(",")}


def lint_file(
    path: str | Path,
    root: str | Path | None = None,
    select: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Run the (selected) rules over one file."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintFinding(str(path), exc.lineno or 1, exc.offset or 0,
                        "syntax-error", str(exc.msg))
        ]
    try:
        relpath = path.resolve().relative_to(Path(root).resolve()).as_posix() if root else path.as_posix()
    except ValueError:
        relpath = path.as_posix()
    ctx = FileContext(path=path, relpath=relpath, source=source, tree=tree)
    lines = source.splitlines()
    wanted = set(select) if select is not None else None
    findings = []
    for r in rules():
        if wanted is not None and r.id not in wanted:
            continue
        for node, message in r.check(ctx):
            line = getattr(node, "lineno", None) or int(node)
            col = getattr(node, "col_offset", 0)
            text = lines[line - 1] if 0 < line <= len(lines) else ""
            if _suppressed(text, r.id):
                continue
            findings.append(LintFinding(str(path), line, col, r.id, message))
    return findings


def lint_paths(
    paths: Iterable[str | Path] = (),
    select: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Run the lint pass over files and/or directory trees (default:
    the installed ``repro`` package source).  Findings are sorted by
    location."""
    roots = [Path(p) for p in paths]
    if not roots:
        import repro

        roots = [Path(repro.__file__).parent]
    findings: list[LintFinding] = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        base = root if root.is_dir() else root.parent
        for f in files:
            if "__pycache__" in f.parts:
                continue
            findings.extend(lint_file(f, root=base, select=select))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
