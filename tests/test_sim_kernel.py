"""Tests for the discrete-event simulation kernel (CSIM substitute)."""

from __future__ import annotations

import pytest

from repro.sim import Environment


class TestScheduling:
    def test_clock_advances_in_order(self):
        env = Environment()
        seen = []
        env.schedule(2.0, seen.append, "b")
        env.schedule(1.0, seen.append, "a")
        env.schedule(3.0, seen.append, "c")
        env.run()
        assert seen == ["a", "b", "c"]
        assert env.now == 3.0

    def test_fifo_at_same_timestamp(self):
        env = Environment()
        seen = []
        for x in "abc":
            env.schedule(1.0, seen.append, x)
        env.run()
        assert seen == ["a", "b", "c"]

    def test_run_until(self):
        env = Environment()
        seen = []
        env.schedule(1.0, seen.append, "a")
        env.schedule(5.0, seen.append, "b")
        env.run(until=2.0)
        assert seen == ["a"]
        assert env.now == 2.0
        env.run()
        assert seen == ["a", "b"]

    def test_nested_scheduling(self):
        env = Environment()
        seen = []

        def fire():
            seen.append(env.now)
            if env.now < 3:
                env.schedule(1.0, fire)

        env.schedule(1.0, fire)
        env.run()
        assert seen == [1.0, 2.0, 3.0]


class TestEvents:
    def test_succeed_resumes_waiters(self):
        env = Environment()
        ev = env.event()
        got = []
        ev.wait(lambda e: got.append(e.value))
        env.schedule(1.0, ev.succeed, 42)
        env.run()
        assert got == [42]

    def test_wait_on_triggered_event_fires_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed("x")
        got = []
        ev.wait(lambda e: got.append(e.value))
        env.run()
        assert got == ["x"]

    def test_double_succeed_raises(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_timeout_value(self):
        env = Environment()
        t = env.timeout(2.5, value="done")
        got = []
        t.wait(lambda e: got.append((env.now, e.value)))
        env.run()
        assert got == [(2.5, "done")]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)


class TestProcesses:
    def test_simple_process(self):
        env = Environment()
        trace = []

        def proc():
            trace.append(env.now)
            yield env.timeout(1.0)
            trace.append(env.now)
            yield env.timeout(2.0)
            trace.append(env.now)
            return "finished"

        p = env.process(proc())
        env.run()
        assert trace == [0.0, 1.0, 3.0]
        assert p.triggered and p.value == "finished"

    def test_process_receives_event_values(self):
        env = Environment()

        def proc():
            v = yield env.timeout(1.0, value=7)
            return v * 2

        p = env.process(proc())
        env.run()
        assert p.value == 14

    def test_process_waits_on_process(self):
        env = Environment()

        def child():
            yield env.timeout(5.0)
            return "child-done"

        def parent():
            v = yield env.process(child())
            return f"saw {v}"

        p = env.process(parent())
        env.run()
        assert p.value == "saw child-done"
        assert env.now == 5.0

    def test_yielding_non_event_raises(self):
        env = Environment()

        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(TypeError):
            env.run()

    def test_all_of(self):
        env = Environment()
        done = []

        def proc():
            values = yield env.all_of([env.timeout(1, "a"), env.timeout(3, "b")])
            done.append((env.now, values))

        env.process(proc())
        env.run()
        assert done == [(3.0, ["a", "b"])]

    def test_all_of_empty(self):
        env = Environment()
        ev = env.all_of([])
        assert ev.triggered

    def test_any_of_first_wins(self):
        env = Environment()
        got = []

        def proc():
            v = yield env.any_of([env.timeout(5, "slow"), env.timeout(1, "fast")])
            got.append((env.now, v))

        env.process(proc())
        env.run()
        assert got == [(1.0, "fast")]

    def test_any_of_ignores_later_triggers(self):
        env = Environment()
        ev = env.any_of([env.timeout(1, "a"), env.timeout(2, "b")])
        env.run()
        assert ev.triggered and ev.value == "a"
