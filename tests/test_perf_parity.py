"""Parity tests for the performance layer.

The fast-path kernel, the topology/labeling caches and the parallel
sweep runner are pure optimizations: every one of them must be
bit-for-bit equivalent to the straightforward computation it replaced.
This suite proves that equivalence —

* cached topology accessors (distance matrix, diameter, channel count,
  dimension-ordered paths) against uncached/BFS references;
* the memoized routing function R against the per-call reference
  implementations in :mod:`repro.labeling.reference`, property-based
  over meshes, hypercubes and k-ary n-cubes;
* the two-lane kernel against the heap-only legacy kernel, including
  the FIFO wake-order of ``Event.succeed`` waiter batches;
* :func:`repro.parallel.run_sweep` against a serial loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.labeling import canonical_labeling
from repro.labeling.reference import (
    ReferenceRouting,
    reference_high_neighbors,
    reference_low_neighbors,
    reference_monotone_candidates,
    reference_route_candidates,
    reference_route_path,
    reference_route_step,
)
from repro.parallel import SweepJob, derive_seed, replicate, run_sweep
from repro.sim import LegacyEnvironment, SimConfig
from repro.sim.kernel import Environment
from repro.sim.runner import run_dynamic
from repro.sim.traffic import Router
from repro.topology import Hypercube, KAryNCube, Mesh2D, Mesh3D
from repro.topology.base import Topology

TOPOLOGIES = [
    Mesh2D(5, 4),
    Mesh2D(8, 8),
    Mesh3D(3, 3, 3),
    Hypercube(4),
    KAryNCube(3, 3),
    KAryNCube(4, 2),
]


@st.composite
def topology_and_nodes(draw, distinct=False):
    topology = draw(st.sampled_from(TOPOLOGIES))
    n = topology.num_nodes
    i = draw(st.integers(0, n - 1))
    j = draw(st.integers(0, n - 1))
    if distinct and i == j:
        j = (j + 1) % n
    return topology, topology.node_at(i), topology.node_at(j)


# ----------------------------------------------------------------------
# Topology caches.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=str)
def test_distance_matrix_matches_generic_bfs(topology):
    """The (possibly vectorized) cached matrix equals a per-source BFS
    over the neighbor tables — the definition of graph distance."""
    M = topology.distance_matrix()
    reference = Topology._compute_distance_matrix(topology)
    assert np.array_equal(M, reference)
    # cached: same (read-only) object on every call
    assert topology.distance_matrix() is M
    assert not M.flags.writeable


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=str)
def test_diameter_and_channels_match_matrix(topology):
    M = topology.distance_matrix()
    assert topology.diameter() == int(M.max())
    degree_sum = sum(len(topology.neighbors(v)) for v in topology.nodes())
    assert topology.num_channels == degree_sum


@settings(max_examples=120, deadline=None)
@given(topology_and_nodes())
def test_distance_scalar_matches_matrix(tc):
    topology, u, v = tc
    M = topology.distance_matrix()
    assert topology.distance(u, v) == int(M[topology.index(u), topology.index(v)])


@settings(max_examples=120, deadline=None)
@given(topology_and_nodes())
def test_dimension_ordered_path_cache_parity(tc):
    topology, u, v = tc
    cached = topology.dimension_ordered_path(u, v)
    assert cached == topology._dimension_ordered_path(u, v)
    again = topology.dimension_ordered_path(u, v)
    assert again == cached
    assert again is not cached  # always a fresh, caller-mutable copy


# ----------------------------------------------------------------------
# Labeling caches vs the uncached reference implementation of R.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=str)
def test_label_position_tables(topology):
    labeling = canonical_labeling(topology)
    for v in topology.nodes():
        assert labeling._label_of(v) == labeling.label(v)
        assert labeling.high_neighbors(v) == reference_high_neighbors(labeling, v)
        assert labeling.low_neighbors(v) == reference_low_neighbors(labeling, v)


@settings(max_examples=200, deadline=None)
@given(topology_and_nodes(distinct=True))
def test_routing_function_parity(tc):
    topology, u, v = tc
    labeling = canonical_labeling(topology)
    assert labeling.route_candidates(u, v) == reference_route_candidates(labeling, u, v)
    assert labeling.monotone_candidates(u, v) == reference_monotone_candidates(
        labeling, u, v
    )
    assert labeling.route_step(u, v) == reference_route_step(labeling, u, v)
    assert labeling.route_path(u, v) == reference_route_path(labeling, u, v)
    # the memoized path is served as an immutable tuple of the same walk
    assert list(labeling.route_path_tuple(u, v)) == labeling.route_path(u, v)


# ----------------------------------------------------------------------
# Kernel parity.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("env_cls", [Environment, LegacyEnvironment])
def test_event_succeed_wakes_waiters_fifo(env_cls):
    """Waiters resume in registration order, interleaved with other
    same-time callbacks in strict scheduling order."""
    env = env_cls()
    order = []
    ev = env.event()
    env.schedule(0.0, order.append, "pre")
    for name in ("w1", "w2", "w3"):
        ev.wait(lambda _, name=name: order.append(name))
    env.schedule(0.0, lambda: ev.succeed())
    env.schedule(0.0, order.append, "post")
    env.run()
    # "post" was scheduled before succeed() ran, so its sequence number
    # precedes the waiters'.
    assert order == ["pre", "post", "w1", "w2", "w3"]


def test_fast_and_legacy_kernel_schedule_order_interleaved():
    """Randomized mixed zero-delay/timed workload dispatches in the
    same global order on both kernels."""
    import random

    def drive(env_cls):
        rng = random.Random(1234)
        env = env_cls()
        log = []

        def fire(tag):
            log.append((round(env.now, 9), tag))
            if len(log) < 400:
                delay = rng.choice([0.0, 0.0, 0.5, 1.5])
                env.schedule(delay, fire, f"{tag}/{len(log)}")

        for i in range(5):
            env.schedule(rng.choice([0.0, 1.0]), fire, f"root{i}")
        env.run(until=300.0)
        return log

    assert drive(Environment) == drive(LegacyEnvironment)


@pytest.mark.parametrize("scheme", ["dual-path", "multi-path", "tree-xfirst"])
def test_dynamic_results_identical_across_kernels(scheme):
    mesh = Mesh2D(6, 6)
    cfg = SimConfig(
        num_messages=150,
        num_destinations=6,
        mean_interarrival=400e-6,
        channels_per_link=2,
        seed=7,
    )
    fast = run_dynamic(mesh, scheme, cfg)
    legacy = run_dynamic(mesh, scheme, cfg, env_factory=LegacyEnvironment)
    assert fast.latency == legacy.latency
    assert fast.sim_time == legacy.sim_time
    assert fast.deliveries == legacy.deliveries
    assert fast.worms == legacy.worms


def test_reference_routing_path_is_bit_identical():
    """The benchmark's reconstructed pre-optimization path (legacy
    kernel + uncached routing + per-message validation) produces the
    same simulation as the optimized default path."""
    mesh = Mesh2D(6, 6)
    cfg = SimConfig(
        num_messages=100,
        num_destinations=6,
        mean_interarrival=400e-6,
        channels_per_link=2,
        seed=11,
    )
    router = Router(
        mesh, "dual-path",
        labeling=ReferenceRouting(canonical_labeling(mesh)),
        validate=True,
    )
    baseline = run_dynamic(
        mesh, "dual-path", cfg, router=router, env_factory=LegacyEnvironment
    )
    fast = run_dynamic(mesh, "dual-path", cfg)
    assert baseline.latency == fast.latency
    assert baseline.sim_time == fast.sim_time


# ----------------------------------------------------------------------
# Parallel sweep parity.
# ----------------------------------------------------------------------


def _small_jobs():
    mesh = Mesh2D(5, 5)
    base = SimConfig(
        num_messages=60,
        num_destinations=5,
        mean_interarrival=500e-6,
        channels_per_link=2,
        seed=3,
    )
    return [
        SweepJob(mesh, scheme, cfg)
        for scheme in ("dual-path", "multi-path")
        for cfg in replicate(base, 2)
    ]


def test_run_sweep_parallel_matches_serial_bit_for_bit():
    jobs = _small_jobs()
    serial = [run_dynamic(j.topology, j.scheme, j.config) for j in jobs]
    for workers in (1, 2):
        swept = run_sweep(jobs, workers=workers)
        assert len(swept) == len(serial)
        for a, b in zip(serial, swept):
            assert a.latency == b.latency
            assert a.sim_time == b.sim_time
            assert a.injected_messages == b.injected_messages
            assert a.deliveries == b.deliveries


def test_run_sweep_accepts_plain_tuples():
    jobs = _small_jobs()
    as_tuples = [(j.topology, j.scheme, j.config) for j in jobs[:2]]
    swept = run_sweep(as_tuples, workers=1)
    serial = [run_dynamic(j.topology, j.scheme, j.config) for j in jobs[:2]]
    assert [r.latency for r in swept] == [r.latency for r in serial]


def test_derive_seed_deterministic_and_spread():
    seeds = [derive_seed(42, i) for i in range(50)]
    assert seeds == [derive_seed(42, i) for i in range(50)]
    assert len(set(seeds)) == 50
    assert all(0 <= s < 2**63 for s in seeds)
    # a different base seed yields an unrelated sequence
    assert set(seeds).isdisjoint(derive_seed(43, i) for i in range(50))


def test_replicate_assigns_derived_seeds():
    base = SimConfig(seed=42)
    configs = replicate(base, 4)
    assert [c.seed for c in configs] == [derive_seed(42, i) for i in range(4)]
    assert all(c.num_messages == base.num_messages for c in configs)
