"""Discrete-event wormhole network simulation (§7.2's dynamic study).

The CSIM-equivalent kernel lives in :mod:`repro.sim.kernel`; the
reference flit-level wormhole model in :mod:`repro.sim.reference` (the
vectorized structure-of-arrays engine in :mod:`repro.sim.dense` is its
parity-tested counterpart); routing adapters in
:mod:`repro.sim.traffic`; the experiment drivers in
:mod:`repro.sim.runner`, which take ``engine="reference"`` or
``engine="dense"``.
"""

from .config import InvalidConfigError, SimConfig
from .dense import DenseEngine, EngineCounters
from .kernel import Environment, Event, LegacyEnvironment, Process, Timeout
from .network import (
    AdaptivePathWorm,
    Channel,
    Delivery,
    PathWorm,
    TreeWorm,
    WormholeNetwork,
)
from .circuit import CircuitMessage, inject_circuit_path
from .faults import (
    FaultEvent,
    FaultPlan,
    FaultState,
    FaultyWormholeNetwork,
    derive_fault_seed,
)
from .saf import SAFNetwork
from .vct import VCTWorm, inject_vct_path
from .runner import (
    ENGINES,
    DeadlockDetected,
    FaultResult,
    MixedResult,
    inject_specs,
    run_mixed,
    run_resilient,
    run_until_confident,
    DynamicResult,
    ScenarioResult,
    run_dynamic,
    run_static_scenario,
)
from .stats import SimStats, Summary, batch_means, t975
from .traffic import AdaptiveSpec, PathSpec, Router, TreeSpec, VCTTreeSpec
from .vct_tree import VCTTreeMulticast, inject_vct_tree, tree_chains

__all__ = [
    "AdaptivePathWorm",
    "AdaptiveSpec",
    "Channel",
    "CircuitMessage",
    "DeadlockDetected",
    "Delivery",
    "DenseEngine",
    "DynamicResult",
    "ENGINES",
    "EngineCounters",
    "Environment",
    "InvalidConfigError",
    "FaultEvent",
    "FaultPlan",
    "FaultResult",
    "FaultState",
    "FaultyWormholeNetwork",
    "LegacyEnvironment",
    "MixedResult",
    "Event",
    "PathSpec",
    "PathWorm",
    "SAFNetwork",
    "Process",
    "Router",
    "ScenarioResult",
    "SimConfig",
    "SimStats",
    "Summary",
    "Timeout",
    "TreeSpec",
    "VCTTreeMulticast",
    "VCTTreeSpec",
    "TreeWorm",
    "VCTWorm",
    "WormholeNetwork",
    "batch_means",
    "inject_circuit_path",
    "inject_specs",
    "inject_vct_path",
    "inject_vct_tree",
    "tree_chains",
    "derive_fault_seed",
    "run_dynamic",
    "run_mixed",
    "run_resilient",
    "run_until_confident",
    "run_static_scenario",
    "t975",
]
