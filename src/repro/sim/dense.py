"""Vectorized structure-of-arrays wormhole engine.

The reference model (:mod:`repro.sim.reference`) steps one worm object
per event through the kernel; profiling shows the per-worm Python
callback chain — not the calendar — bounds dynamic-run throughput.
This engine keeps the *same* simulation as flat state:

* channel occupancy (``in_use``/``cap``) and the fault mask
  (``chan_down``) as NumPy arrays over interned channel ids;
* per-worm route cursors (``w_idx``), lengths, flit counts, message
  ids and injection ticks as parallel arrays;
* path-worm routes in one flat route pool (``rp_chan``/``rp_dest``),
  sliced per worm by ``w_off``;
* blocked state as per-channel FIFO waiter lists of worm ids.

Time is an integer flit clock.  The calendar is a bucket per tick
(found through a heap of tick keys, so empty ticks cost nothing), and
each tick is one pass over its bucket; consecutive path-worm steps
coalesce into array chunks that a single vectorized pass advances —
acquire, trailing release, delivery latch and next-tick scheduling as
bulk array ops — instead of one Python callback per worm per flit.

Parity contract
---------------

Event-for-event equality with the reference engine under
``SimConfig(quantize_arrivals=True)``: every traffic/fault/retry delay
is then a whole number of flit times on both engines, and this engine
reproduces the two-lane kernel's dispatch order exactly — pre-scheduled
bucket entries run in scheduling order, zero-delay work appends to the
live bucket (the immediate lane), and releases wake waiters FIFO.  A
vector chunk preserves that order by construction: it only batches
*consecutive* steps, splits at every mover/arrival boundary, and falls
back to the ordered scalar path whenever two worms in a chunk touch the
same channel in the same tick.  The parity suite asserts identical
delivery streams and latency summaries across engines for every
simulable ``worm_style``; worm styles without a dense kernel
(``vct-tree``) transparently fall back to the reference engine.

Fault injection works on both engines: :class:`~repro.sim.faults.FaultState`
link/node queries are folded into the vectorized ``chan_down`` mask
(rebuilt per state version), while kills, drop handling and
retransmission mirror the fault-aware reference worms through the
ordered scalar path.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass, field

import numpy as np

from .config import SimConfig

__all__ = ["DenseEngine", "EngineCounters"]

# worm kinds
_PATH, _ADAPTIVE, _TREE = 0, 1, 2

# calendar entry kinds (first element of a tuple entry); a *list* entry
# is a chunk of consecutive path-worm step events.
_STEP = 0    # (kind, w): advance one hop / start arrival drain
_REL = 1     # (kind, w, hop): release one held channel, latch delivery
_FIN = 2     # (kind, w): tail fully drained
_TTICK = 3   # (kind, w): tree level tick
_TREL = 4    # (kind, w, level): release one tree level
_CALL = 5    # (kind, fn, args): inline callback (injection, fault event)
_DEFER = 6   # (kind, fn, args): callback via the immediate lane (retry)
_BREL = 7    # (kind, ws, hops): vectorized release chunk
_BFIN = 8    # (kind, ws): vectorized finish chunk
_ARR = 9     # (kind, w): path worm starts its arrival drain (tick-vector mode)


def _ragged(starts, counts):
    """Expand ragged per-row ranges ``[starts[i], starts[i]+counts[i])``
    into flat ``(row, value)`` arrays."""
    tot = int(counts.sum())
    if tot == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e
    rep = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    cum = np.cumsum(counts) - counts
    return rep, np.arange(tot, dtype=np.int64) - cum[rep] + starts[rep]


@dataclass
class EngineCounters:
    """Dense-engine progress counters (a ``cache_stats()``-style API:
    :meth:`DenseEngine.cache_stats` returns them as a plain dict)."""

    #: non-empty ticks processed
    ticks: int = 0
    #: events processed one at a time (scalar path)
    events: int = 0
    #: events processed inside vectorized chunks
    batched_events: int = 0
    #: vectorized passes executed
    batches: int = 0
    #: widest single vectorized pass (the high-water chunk width)
    max_batch_width: int = 0
    #: chunked events diverted to the ordered scalar path because two
    #: worms touched the same channel in the same tick (classic-mode
    #: chunks only; tick-vector rounds resolve convoys in-place)
    scalar_fallback_events: int = 0
    #: vectorized dispatch rounds executed (tick-vector mode)
    rounds: int = 0
    #: NumPy array-op dispatches issued by the vector core (counted per
    #: code path, so ``array_ops / rounds`` is the measured per-round
    #: dispatch floor)
    array_ops: int = 0
    #: events settled by the ordered convoy resolver (same-round
    #: channel interactions that previously fell back to scalar kernels)
    resolver_events: int = 0
    #: rounds that engaged the convoy resolver
    resolver_rounds: int = 0
    #: multi-tick frontier windows committed
    windows: int = 0
    #: frontier windows abandoned to per-tick dispatch mid-validation
    window_aborts: int = 0
    #: committed frontier-window widths (ticks merged -> count)
    window_hist: dict = field(default_factory=dict)
    #: most worms simultaneously in flight
    max_active_worms: int = 0
    #: total worms injected
    worms: int = 0
    #: deliveries recorded
    deliveries: int = 0
    #: channel-acquisition attempts that blocked
    blocks: int = 0
    #: blocked worms woken by a release
    wakes: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


class _AdaptiveState:
    """Per-worm mutable state of one adaptive path worm (scalar kernel)."""

    __slots__ = ("nodes", "cids", "queue", "dests", "labeling", "channel_key", "capacity")

    def __init__(self, source, destinations, labeling, channel_key, capacity):
        self.nodes = [source]
        self.cids: list[int] = []
        self.queue = list(destinations)
        self.dests = set(destinations)
        self.labeling = labeling
        self.channel_key = channel_key
        self.capacity = capacity


class _TreeHandle:
    """Return value of :meth:`DenseEngine.inject_tree`, duck-typing the
    reference ``TreeWorm`` just enough for ``inject_specs`` to assign
    ``dest_levels`` after injection."""

    __slots__ = ("engine", "w")

    def __init__(self, engine: "DenseEngine", w: int):
        self.engine = engine
        self.w = w

    @property
    def dest_levels(self):
        return self.engine.tree_dests[self.w]

    @dest_levels.setter
    def dest_levels(self, value) -> None:
        self.engine.tree_dests[self.w] = list(value)


class DenseEngine:
    """Structure-of-arrays flit simulation core.

    Drop-in for the injection surface of
    :class:`~repro.sim.reference.WormholeNetwork` (``inject_path``,
    ``inject_adaptive_path``, ``inject_tree``, ``config``), so
    :func:`repro.sim.runner.inject_specs` drives either engine
    unchanged.  Passing a ``fault_state`` selects the fault-aware
    scalar kernels (mirroring the faulty reference worms, including
    delivery dedup, kill accounting and ``drop_handler`` callbacks);
    without one the vectorized fast path runs.
    """

    #: chunks narrower than this advance through the scalar path (the
    #: per-pass NumPy overhead outweighs the loop below it)
    BATCH_MIN = 96
    #: routes at least this long use the vectorized edge-LUT interner
    LUT_MIN_HOPS = 8
    #: node-id width of the edge LUT (nodes must fit in LUT_BITS bits)
    LUT_BITS = 11

    def __init__(
        self,
        config: SimConfig,
        fault_state=None,
        stats=None,
        node_index: dict | None = None,
        vectorize: bool = True,
    ):
        self.config = config
        self.tf = config.flit_time
        self.tick = 0
        self.counters = EngineCounters()
        self.faulty = fault_state is not None
        self.fault_state = fault_state
        self.stats = stats
        self.vectorize = vectorize and not self.faulty
        #: tick-level vectorized dispatch; only valid for runs whose
        #: every worm is a path worm (``worm_style`` star / vc-star) —
        #: the drivers in :mod:`repro.sim.runner` gate it on the spec
        self.tickvec = False
        self._inject_hook: tuple | None = None
        self._round_defers: list = []
        self.active_worms = 0
        self.total_worms = 0

        # calendar: bucket of entries per integer tick
        self.buckets: dict[int, list] = {}
        self.tick_heap: list[int] = []
        self._pending: list = []

        # multi-tick frontier batching (tick-vector mode): adaptive
        # window width, consecutive-abort count and attempt cooldown
        # (exponential under sustained contention)
        self._win_k = 8
        self._win_bad = 0
        self._win_cool = 0
        self._win_cool_len = 16

        # channels (SoA over interned ids)
        n = 256
        self.chan_ids: dict = {}
        self.chan_keys: list = []
        self.n_chan = 0
        self.cap = np.zeros(n, dtype=np.int32)
        self.in_use = np.zeros(n, dtype=np.int32)
        self.has_waiters = np.zeros(n, dtype=bool)
        self.waiters: dict[int, list[int]] = {}
        self._waiter_total = 0

        # worms (SoA)
        m = 1024
        self.n_worms = 0
        self.w_kind = np.zeros(m, dtype=np.int8)
        self.w_idx = np.zeros(m, dtype=np.int64)
        self.w_len = np.zeros(m, dtype=np.int64)
        self.w_flits = np.zeros(m, dtype=np.int64)
        self.w_mid = np.zeros(m, dtype=np.int64)
        self.w_inj = np.zeros(m, dtype=np.int64)
        self.w_off = np.zeros(m, dtype=np.int64)

        # flat route pool (path worms)
        p = 4096
        self.rp_chan = np.zeros(p, dtype=np.int64)
        self.rp_dest = np.zeros(p, dtype=bool)
        self.rp_head: list = []  # head node object per pool slot
        self.rp_used = 0
        #: memoized (channel-id vector, delivery-flag vector) per
        #: (nodes, destinations, capacity) route
        self._route_cache: dict = {}
        #: lazily-filled (u << LUT_BITS | v) -> channel-id table, built
        #: the first time a long route over small-int nodes is injected
        #: (-1 = not interned yet); one table per (capacity, route key)
        self._edge_luts: dict = {}
        self._dest_scratch = None
        #: node label -> dense small int for the edge LUTs
        self._node_ids: dict = {}

        # ragged per-worm state (scalar kernels)
        self.ad: dict[int, _AdaptiveState] = {}
        self.tree_chans: dict[int, list] = {}
        self.tree_dests: dict[int, list] = {}

        # delivery stream (column-wise; Delivery objects built on demand)
        self.d_mid: list[int] = []
        self.d_node: list = []
        self.d_inj: list[int] = []
        self.d_tick: list[int] = []

        # fault-aware state (mirrors FaultyWormholeNetwork)
        self.drop_handler = None
        self.origin_tick: int | None = None
        if self.faulty:
            if node_index is None:
                raise ValueError("fault-aware dense engine needs node_index")
            self.w_dead = np.zeros(m, dtype=bool)
            self.w_arrived = np.zeros(m, dtype=bool)
            self.w_delivered: dict[int, set] = {}
            self.w_dests: dict[int, set] = {}
            self.w_src: dict[int, object] = {}
            self.live: dict[int, None] = {}
            self.delivered_by_message: dict[int, set] = {}
            self._node_index = node_index
            self._node_down = np.zeros(len(node_index), dtype=bool)
            self._link_ids: dict = {}
            self._link_down = np.zeros(n, dtype=bool)
            self.ch_u = np.zeros(n, dtype=np.int64)
            self.ch_v = np.zeros(n, dtype=np.int64)
            self.ch_link = np.zeros(n, dtype=np.int64)
            self.chan_down = np.zeros(n, dtype=bool)
            self._fault_version = fault_state._version
            self._any_down = fault_state.any_down

    # ------------------------------------------------------------------
    # Calendar.
    # ------------------------------------------------------------------

    def _bucket(self, t: int) -> list:
        b = self.buckets.get(t)
        if b is None:
            b = self.buckets[t] = []
            heapq.heappush(self.tick_heap, t)
        return b

    def _at(self, dt: int, entry) -> None:
        self._bucket(self.tick + dt).append(entry)

    def _sched_entry(self, tick: int, entry) -> None:
        """Insert ``entry`` into ``tick``'s bucket.  During a
        tick-vector scan the insert is deferred to the emission pass so
        it lands among the batched rows' own follow-ups at this call's
        calendar position — bucket order must equal the reference
        kernel's chronological scheduling order, which contention
        resolution is sensitive to."""
        h = self._inject_hook
        if h is not None:
            self._round_defers.append((len(h[0]), tick, entry))
        else:
            self._bucket(tick).append(entry)

    def call_at(self, tick: int, fn, *args) -> None:
        """Run ``fn(*args)`` inline at absolute ``tick`` (>= 1)."""
        self._sched_entry(tick, (_CALL, fn, args))

    def call_in(self, dt: int, fn, *args) -> None:
        """Run ``fn(*args)`` inline ``dt`` ticks from now."""
        self._sched_entry(self.tick + dt, (_CALL, fn, args))

    def call_in_deferred(self, dt: int, fn, *args) -> None:
        """Like :meth:`call_in`, but on arrival the call joins the end
        of the tick's immediate lane — the dense equivalent of waiting
        on a kernel ``Timeout`` (fire at the stamp, run the waiters
        after the already-queued immediates)."""
        self._sched_entry(self.tick + dt, (_DEFER, fn, args))

    def _sched_step(self, w: int) -> None:
        """Schedule the next flit step of ``w`` one tick out.
        Consecutive path-worm steps coalesce into one chunk entry."""
        if self.vectorize and self.w_kind[w] == _PATH:
            b = self._bucket(self.tick + 1)
            if self.tickvec and self.w_idx[w] == self.w_len[w]:
                # tag arrivals at scheduling time so the tick-vector
                # scan never needs a per-entry cursor read
                b.append((_ARR, w))
            elif b and type(b[-1]) is list:
                b[-1].append(w)
            else:
                b.append([w])
        else:
            self._at(1, ((_TTICK, w) if self.w_kind[w] == _TREE else (_STEP, w)))

    @property
    def now(self) -> float:
        return self.tick * self.tf

    # ------------------------------------------------------------------
    # Channels.
    # ------------------------------------------------------------------

    def _chan(self, key, capacity: int | None = None) -> int:
        cid = self.chan_ids.get(key)
        if cid is not None:
            return cid
        cid = self.n_chan
        if cid == len(self.cap):
            self.cap = np.concatenate([self.cap, np.zeros(cid, dtype=np.int32)])
            self.in_use = np.concatenate([self.in_use, np.zeros(cid, dtype=np.int32)])
            self.has_waiters = np.concatenate(
                [self.has_waiters, np.zeros(cid, dtype=bool)]
            )
            if self.faulty:
                for name in ("ch_u", "ch_v", "ch_link"):
                    arr = getattr(self, name)
                    setattr(self, name, np.concatenate([arr, np.zeros(cid, dtype=np.int64)]))
                self.chan_down = np.concatenate([self.chan_down, np.zeros(cid, dtype=bool)])
        self.n_chan = cid + 1
        self.chan_ids[key] = cid
        self.chan_keys.append(key)
        self.cap[cid] = capacity or self.config.channels_per_link
        if self.faulty:
            u, v = key[0], key[1]
            self.ch_u[cid] = self._node_index[u]
            self.ch_v[cid] = self._node_index[v]
            lid = self._link_ids.get((u, v))
            if lid is None:
                lid = self._link_ids[(u, v)] = len(self._link_ids)
                if lid == len(self._link_down):
                    self._link_down = np.concatenate(
                        [self._link_down, np.zeros(lid, dtype=bool)]
                    )
            self.ch_link[cid] = lid
            self.chan_down[cid] = (
                self.fault_state.channel_down(key) if self._any_down else False
            )
        return cid

    def _intern_route(
        self,
        nodes,
        destinations,
        off: int,
        n: int,
        cap: int,
        channel_key=None,
        lut_key=None,
    ) -> bool:
        """Vectorized route interning for long paths: node labels of
        any hashable kind intern to dense small ints, channel ids come
        from one gather on a lazily-filled ``(u << LUT_BITS) | v``
        table (one per (capacity, route-key) pair), delivery flags
        from a scratch membership array.  Returns False when the
        engine has seen more distinct nodes than a table covers and
        the caller must fall back to the per-hop loop."""
        lut = self._edge_luts.get((cap, lut_key))
        if lut is None:
            lut = self._edge_luts[(cap, lut_key)] = np.full(
                1 << (2 * self.LUT_BITS), -1, dtype=np.int32
            )
            if self._dest_scratch is None:
                self._dest_scratch = np.zeros(1 << self.LUT_BITS, dtype=bool)
        nid = self._node_ids
        try:
            arr = np.fromiter(
                map(nid.__getitem__, nodes), dtype=np.int64, count=n + 1
            )
        except KeyError:
            lim = 1 << self.LUT_BITS
            for x in nodes:
                if x not in nid:
                    if len(nid) >= lim:
                        return False
                    nid[x] = len(nid)
            arr = np.fromiter(
                map(nid.__getitem__, nodes), dtype=np.int64, count=n + 1
            )
        u = arr[:-1]
        v = arr[1:]
        keys = (u << self.LUT_BITS) | v
        cids = lut[keys]
        miss = cids < 0
        if miss.any():
            for i in np.flatnonzero(miss):
                pair = (
                    (nodes[i], nodes[i + 1])
                    if channel_key is None
                    else channel_key(nodes[i], nodes[i + 1])
                )
                lut[keys[i]] = self._chan(pair, cap)
            cids = lut[keys]
        self.rp_chan[off : off + n] = cids
        scratch = self._dest_scratch
        dl = [nid[d] for d in destinations if d in nid]
        scratch[dl] = True
        self.rp_dest[off : off + n] = scratch[v]
        scratch[dl] = False
        return True

    def _block(self, w: int, cid: int) -> None:
        q = self.waiters.get(cid)
        if q is None:
            q = self.waiters[cid] = []
        q.append(w)
        self.has_waiters[cid] = True
        self._waiter_total += 1
        self.counters.blocks += 1

    def _wake(self, cid: int) -> None:
        """Wake every waiter of ``cid`` FIFO: each re-attempts its
        acquisition from the immediate lane, re-queueing if still
        blocked (mirrors ``WormholeNetwork.release``)."""
        q = self.waiters.get(cid)
        if not q:
            return
        self.waiters[cid] = []
        self.has_waiters[cid] = False
        self._waiter_total -= len(q)
        pend = self._pending
        kinds = self.w_kind
        for w in q:
            pend.append((_TTICK, w) if kinds[w] == _TREE else (_STEP, w))
        self.counters.wakes += len(q)

    def _release_cid(self, cid: int) -> None:
        self.in_use[cid] -= 1
        if self._waiter_total:
            self._wake(cid)

    # ------------------------------------------------------------------
    # Fault mask (vectorized FaultState queries).
    # ------------------------------------------------------------------

    def _sync_faults(self) -> None:
        """Rebuild the per-channel ``chan_down`` mask for the current
        fault-state version: a channel is down iff its link is down or
        either endpoint node is down — the same predicate as
        ``FaultState.channel_down``, evaluated as three array lookups."""
        fs = self.fault_state
        self._fault_version = fs._version
        n = self.n_chan
        if not (fs.down_links or fs.down_nodes):
            self._any_down = False
            self.chan_down[:n] = False
            return
        self._any_down = True
        nd = self._node_down
        nd[:] = False
        for v in fs.down_nodes:
            nd[self._node_index[v]] = True
        ld = self._link_down
        ld[:] = False
        for uv in fs.down_links:
            lid = self._link_ids.get(uv)
            if lid is not None:
                ld[lid] = True
        self.chan_down[:n] = (
            ld[self.ch_link[:n]] | nd[self.ch_u[:n]] | nd[self.ch_v[:n]]
        )

    def _check_faults(self) -> bool:
        """True when any element is currently down (mask refreshed)."""
        if self.fault_state._version != self._fault_version:
            self._sync_faults()
        return self._any_down

    # ------------------------------------------------------------------
    # Worm bookkeeping.
    # ------------------------------------------------------------------

    def _grow_worms(self) -> None:
        m = len(self.w_kind)
        for name in ("w_kind", "w_idx", "w_len", "w_flits", "w_mid", "w_inj", "w_off"):
            arr = getattr(self, name)
            setattr(self, name, np.concatenate([arr, np.zeros(m, dtype=arr.dtype)]))
        if self.faulty:
            self.w_dead = np.concatenate([self.w_dead, np.zeros(m, dtype=bool)])
            self.w_arrived = np.concatenate([self.w_arrived, np.zeros(m, dtype=bool)])

    def _new_worm(self, kind: int, message_id: int, length: int, flits) -> int:
        w = self.n_worms
        if w == len(self.w_kind):
            self._grow_worms()
        self.n_worms = w + 1
        self.w_kind[w] = kind
        self.w_idx[w] = 0
        self.w_len[w] = length
        self.w_flits[w] = self.config.flits_per_message if flits is None else flits
        self.w_mid[w] = message_id
        self.w_inj[w] = self.tick if self.origin_tick is None else self.origin_tick
        self.active_worms += 1
        self.total_worms += 1
        c = self.counters
        c.worms += 1
        if self.active_worms > c.max_active_worms:
            c.max_active_worms = self.active_worms
        if self.faulty:
            self.w_delivered[w] = set()
            self.live[w] = None
        return w

    def _finish(self, w: int) -> None:
        self.active_worms -= 1
        if self.faulty:
            self.live.pop(w, None)

    def _deliver(self, mid: int, node, inj_tick: int) -> None:
        if self.faulty:
            got = self.delivered_by_message.setdefault(mid, set())
            if node in got:
                return
            got.add(node)
            self.stats.delivered += 1
        self.d_mid.append(mid)
        self.d_node.append(node)
        self.d_inj.append(inj_tick)
        self.d_tick.append(self.tick)
        self.counters.deliveries += 1

    # ------------------------------------------------------------------
    # Injection API (mirrors WormholeNetwork.inject_*).
    # ------------------------------------------------------------------

    def inject_path(
        self,
        message_id: int,
        nodes,
        destinations: set,
        channel_key=None,
        capacity: int | None = None,
        flits: int | None = None,
        route_key=None,
    ) -> int:
        cap = capacity or self.config.channels_per_link
        n = len(nodes) - 1
        w = self._new_worm(_PATH, message_id, n, flits)
        need = self.rp_used + n
        # >= keeps one slack slot past rp_used so the batched pass may
        # read (but never use) one position beyond a finished route
        if need >= len(self.rp_chan):
            extra = max(len(self.rp_chan), need - len(self.rp_chan))
            self.rp_chan = np.concatenate([self.rp_chan, np.zeros(extra, dtype=np.int64)])
            self.rp_dest = np.concatenate([self.rp_dest, np.zeros(extra, dtype=bool)])
        off = self.rp_used
        self.w_off[w] = off
        self.rp_used = need
        rp_chan = self.rp_chan
        rp_dest = self.rp_dest
        if channel_key is None:
            # routes repeat whenever a source re-multicasts to the same
            # destination set, so the interned channel-id/delivery-flag
            # vectors are memoized and copied in as array slices
            ck = (
                nodes if type(nodes) is tuple else tuple(nodes),
                frozenset(destinations),
                cap,
            )
            hit = self._route_cache.get(ck)
            if hit is None:
                if n >= self.LUT_MIN_HOPS and self._intern_route(
                    nodes, destinations, off, n, cap
                ):
                    pass
                else:
                    for i in range(n):
                        rp_chan[off + i] = self._chan(
                            (nodes[i], nodes[i + 1]), cap
                        )
                        rp_dest[off + i] = nodes[i + 1] in destinations
                self._route_cache[ck] = (
                    rp_chan[off : off + n].copy(),
                    rp_dest[off : off + n].copy(),
                )
            else:
                rp_chan[off : off + n] = hit[0]
                rp_dest[off : off + n] = hit[1]
            self.rp_head.extend(nodes[1:])
        elif route_key is not None:
            # keyed routes (virtual-channel planes): ``route_key``
            # plus (nodes, destinations, capacity) pins every channel
            # identity, so these memoize exactly like plain routes
            ck = (
                nodes if type(nodes) is tuple else tuple(nodes),
                frozenset(destinations),
                cap,
                route_key,
            )
            hit = self._route_cache.get(ck)
            if hit is None:
                if n >= self.LUT_MIN_HOPS and self._intern_route(
                    nodes, destinations, off, n, cap,
                    channel_key=channel_key, lut_key=route_key,
                ):
                    pass
                else:
                    for i in range(n):
                        rp_chan[off + i] = self._chan(
                            channel_key(nodes[i], nodes[i + 1]), cap
                        )
                        rp_dest[off + i] = nodes[i + 1] in destinations
                self._route_cache[ck] = (
                    rp_chan[off : off + n].copy(),
                    rp_dest[off : off + n].copy(),
                )
            else:
                rp_chan[off : off + n] = hit[0]
                rp_dest[off : off + n] = hit[1]
            self.rp_head.extend(nodes[1:])
        else:
            heads = self.rp_head
            for i in range(n):
                u = nodes[i]
                v = nodes[i + 1]
                rp_chan[off + i] = self._chan(channel_key(u, v), cap)
                rp_dest[off + i] = v in destinations
                heads.append(v)
        if self.faulty:
            self.w_dests[w] = set(destinations)
            self.w_src[w] = nodes[0]
        if n == 0:  # degenerate: source-only path
            self._finish(w)
            return w
        h = self._inject_hook
        if h is not None:
            # tick-vector scan in progress: record the first step as an
            # op at the injection's calendar position instead of
            # advancing inline — the batched pass executes it in order
            h[0].append(w)
            h[1].append(0)
            h[2].append(-1)
        else:
            self._advance_path(w)
        return w

    def inject_adaptive_path(
        self,
        message_id: int,
        source,
        destinations,
        labeling,
        channel_key=lambda u, v: (u, v),
        capacity: int | None = None,
    ) -> int:
        w = self._new_worm(_ADAPTIVE, message_id, 0, None)
        st = _AdaptiveState(source, destinations, labeling, channel_key, capacity)
        self.ad[w] = st
        if self.faulty:
            self.w_dests[w] = st.dests
            self.w_src[w] = source
        self._pop_reached(st)
        if not st.queue:  # degenerate: the source is the only stop
            self._finish(w)
            return w
        self._advance_adaptive(w)
        return w

    def inject_tree(
        self,
        message_id: int,
        levels,
        channel_key=lambda arc: (arc[0], arc[1]),
        capacity: int | None = None,
        flits: int | None = None,
    ) -> "_TreeHandle":
        chan_levels = [
            [self._chan(channel_key(arc), capacity) for arc in level]
            for level in levels
        ]
        w = self._new_worm(_TREE, message_id, len(levels), flits)
        self.tree_chans[w] = chan_levels
        self.tree_dests[w] = [set() for _ in levels]
        handle = _TreeHandle(self, w)
        if not levels:
            self._finish(w)
            return handle
        self._try_tick(w)
        return handle

    # ------------------------------------------------------------------
    # Scalar kernels: path worms.
    # ------------------------------------------------------------------

    def _step_path(self, w: int) -> None:
        if self.faulty and self.w_dead[w]:
            return
        if self.w_idx[w] < self.w_len[w]:
            self._advance_path(w)
        else:
            self._arrive_path(w)

    def _advance_path(self, w: int) -> None:
        i = int(self.w_idx[w])
        cid = int(self.rp_chan[self.w_off[w] + i])
        if self.faulty and self._check_faults() and self.chan_down[cid]:
            self._kill(w, "faulted channel on fixed path")
            return
        if self.in_use[cid] >= self.cap[cid]:
            self._block(w, cid)
            return
        self.in_use[cid] += 1
        self.w_idx[w] = i + 1
        j = i - int(self.w_flits[w])
        if j >= 0:
            self._release_path_hop(w, j)
        self._sched_step(w)

    def _arrive_path(self, w: int) -> None:
        if self.faulty:
            self.w_arrived[w] = True
        D = int(self.w_len[w])
        F = int(self.w_flits[w])
        pend = self._pending
        for i in range(max(0, D - F), D):
            d = i + F - D
            if d == 0:
                pend.append((_REL, w, i))
            else:
                self._at(d, (_REL, w, i))
        if F == 1:
            pend.append((_FIN, w))
        else:
            self._at(F - 1, (_FIN, w))

    def _release_path_hop(self, w: int, i: int) -> None:
        p = int(self.w_off[w] + i)
        self._release_cid(int(self.rp_chan[p]))
        if self.rp_dest[p]:
            head = self.rp_head[p]
            self._deliver(int(self.w_mid[w]), head, int(self.w_inj[w]))
            if self.faulty:
                self.w_delivered[w].add(head)

    # ------------------------------------------------------------------
    # Scalar kernels: adaptive path worms.
    # ------------------------------------------------------------------

    @staticmethod
    def _pop_reached(st: _AdaptiveState) -> None:
        while st.queue and st.queue[0] == st.nodes[-1]:
            st.queue.pop(0)

    def _step_adaptive(self, w: int) -> None:
        if self.faulty and self.w_dead[w]:
            return
        st = self.ad[w]
        self._pop_reached(st)
        if st.queue:
            self._advance_adaptive(w)
            return
        if self.faulty:
            self.w_arrived[w] = True
        D = len(st.cids)
        F = int(self.w_flits[w])
        pend = self._pending
        for i in range(max(0, D - F), D):
            d = i + F - D
            if d == 0:
                pend.append((_REL, w, i))
            else:
                self._at(d, (_REL, w, i))
        if F == 1:
            pend.append((_FIN, w))
        else:
            self._at(F - 1, (_FIN, w))

    def _advance_adaptive(self, w: int) -> None:
        st = self.ad[w]
        cur = st.nodes[-1]
        target = st.queue[0]
        candidates = st.labeling.route_candidates(cur, target)
        detouring = False
        if self.faulty and self._check_faults():
            fs = self.fault_state
            alive = [p for p in candidates if not fs.link_down(cur, p)]
            detouring = len(alive) < len(candidates)
            if detouring and not alive:
                alive = [
                    p
                    for p in st.labeling.monotone_candidates(cur, target)
                    if not fs.link_down(cur, p)
                ]
                if not alive:
                    self._kill(w, "all monotone candidates faulted")
                    return
            candidates = alive
        chosen = None
        for p in candidates:
            cid = self._chan(st.channel_key(cur, p), st.capacity)
            if self.in_use[cid] < self.cap[cid]:
                chosen = (p, cid)
                break
        if chosen is None:
            # block on the most-preferred candidate's channel
            cid = self._chan(st.channel_key(cur, candidates[0]), st.capacity)
            self._block(w, cid)
            return
        if detouring:
            self.stats.detoured += 1
        nxt, cid = chosen
        self.in_use[cid] += 1
        st.cids.append(cid)
        st.nodes.append(nxt)
        i = len(st.cids) - 1
        j = i - int(self.w_flits[w])
        if j >= 0:
            self._release_adaptive_hop(w, j)
        self._at(1, (_STEP, w))

    def _release_adaptive_hop(self, w: int, i: int) -> None:
        st = self.ad[w]
        self._release_cid(st.cids[i])
        head = st.nodes[i + 1]
        if head in st.dests:
            self._deliver(int(self.w_mid[w]), head, int(self.w_inj[w]))
            if self.faulty:
                self.w_delivered[w].add(head)

    # ------------------------------------------------------------------
    # Scalar kernels: lockstep tree worms.
    # ------------------------------------------------------------------

    def _step_tree(self, w: int) -> None:
        if self.faulty and self.w_dead[w]:
            return
        levels = self.tree_chans[w]
        if self.w_idx[w] < len(levels):
            self._try_tick(w)
            return
        if self.faulty:
            self.w_arrived[w] = True
        L = len(levels)
        F = int(self.w_flits[w])
        pend = self._pending
        for idx in range(max(0, L - F), L):
            d = idx + F - L
            if d == 0:
                pend.append((_TREL, w, idx))
            else:
                self._at(d, (_TREL, w, idx))
        if F == 1:
            pend.append((_FIN, w))
        else:
            self._at(F - 1, (_FIN, w))

    def _try_tick(self, w: int) -> None:
        k = int(self.w_idx[w])
        level = self.tree_chans[w][k]
        if self.faulty and self._check_faults():
            for cid in level:
                if self.chan_down[cid]:
                    self._kill(w, "faulted channel in tree level")
                    return
        in_use = self.in_use
        cap = self.cap
        for cid in level:
            if in_use[cid] >= cap[cid]:
                self._block(w, cid)
                return
        for cid in level:
            in_use[cid] += 1
        self.w_idx[w] = k + 1
        j = k - int(self.w_flits[w])
        if j >= 0:
            self._release_tree_level(w, j)
        self._at(1, (_TTICK, w))

    def _release_tree_level(self, w: int, idx: int) -> None:
        for cid in self.tree_chans[w][idx]:
            self._release_cid(cid)
        mid = int(self.w_mid[w])
        inj = int(self.w_inj[w])
        for dest in self.tree_dests[w][idx]:
            self._deliver(mid, dest, inj)
        if self.faulty:
            self.w_delivered[w].update(self.tree_dests[w][idx])

    # ------------------------------------------------------------------
    # Fault kills (mirrors FaultyWormholeNetwork).
    # ------------------------------------------------------------------

    def _held(self, w: int) -> list[int]:
        kind = self.w_kind[w]
        if kind == _PATH:
            i = int(self.w_idx[w])
            off = int(self.w_off[w])
            lo = max(0, i - int(self.w_flits[w]))
            return [int(c) for c in self.rp_chan[off + lo : off + i]]
        if kind == _ADAPTIVE:
            cids = self.ad[w].cids
            return cids[max(0, len(cids) - int(self.w_flits[w])) :]
        k = int(self.w_idx[w])
        out: list[int] = []
        for level in self.tree_chans[w][max(0, k - int(self.w_flits[w])) : k]:
            out.extend(level)
        return out

    def _header_node(self, w: int):
        kind = self.w_kind[w]
        if kind == _PATH:
            i = int(self.w_idx[w])
            return self.w_src[w] if i == 0 else self.rp_head[int(self.w_off[w]) + i - 1]
        if kind == _ADAPTIVE:
            return self.ad[w].nodes[-1]
        return None

    def _hit_by(self, w: int, ev) -> bool:
        keys = [self.chan_keys[c] for c in self._held(w)]
        if ev.kind == "link":
            u, v = ev.target
            return any(k[0] == u and k[1] == v for k in keys)
        node = ev.target
        if self.w_kind[w] != _TREE and self._header_node(w) == node:
            return True
        return any(k[0] == node or k[1] == node for k in keys)

    def on_element_failed(self, ev) -> None:
        """Kill every in-flight worm holding a channel on the failed
        element (injection order, like the reference network)."""
        for w in tuple(self.live):
            if not self.w_dead[w] and not self.w_arrived[w] and self._hit_by(w, ev):
                self._kill(
                    w,
                    "link failed under worm" if ev.kind == "link"
                    else "node failed under worm",
                )

    def _kill(self, w: int, reason: str) -> None:
        if self.w_dead[w]:
            return
        self.w_dead[w] = True
        self.stats.killed_worms += 1
        for cid in self._held(w):
            self._release_cid(cid)
        if self.w_kind[w] == _TREE:
            dests: set = set()
            for level in self.tree_dests[w]:
                dests.update(level)
        else:
            dests = set(self.w_dests[w])
        dropped = dests - self.w_delivered[w]
        self._finish(w)
        if self.drop_handler is not None:
            self.drop_handler(int(self.w_mid[w]), dropped, reason)

    # ------------------------------------------------------------------
    # Vectorized path-worm chunks.
    # ------------------------------------------------------------------

    def _process_chunk(self, chunk: list) -> None:
        """Advance a chunk of consecutive path-worm steps.

        Splits into maximal runs of movers (mid-route) and arrivals
        (route complete), preserving the chunk's order — a mover and an
        arrival have different side effects, so runs may not be
        reordered across each other."""
        ws = np.asarray(chunk, dtype=np.int64)
        at_end = self.w_idx[ws] == self.w_len[ws]
        if not at_end.any():
            self._run_movers(ws)
            return
        if at_end.all():
            self._run_arrivals(ws)
            return
        change = np.flatnonzero(np.diff(at_end)) + 1
        start = 0
        for end in [*change.tolist(), len(ws)]:
            seg = ws[start:end]
            if at_end[start]:
                self._run_arrivals(seg)
            else:
                self._run_movers(seg)
            start = end

    def _run_movers(self, ws: np.ndarray) -> None:
        c = self.counters
        if len(ws) < self.BATCH_MIN:
            for w in ws.tolist():
                self._advance_path(w)
            c.events += len(ws)
            return
        idx = self.w_idx[ws]
        off = self.w_off[ws]
        fl = self.w_flits[ws]
        nxt = self.rp_chan[off + idx]
        relhop = idx - fl
        hasrel = relhop >= 0
        relch = self.rp_chan[(off + relhop)[hasrel]]
        # Interaction guard: if two worms in this run touch the same
        # channel (acquire/acquire or acquire/release), the outcome
        # depends on their order — replay the run through the ordered
        # scalar path.  Distinct channels commute, so the bulk ops
        # below reproduce the scalar order exactly.
        uniq, counts = np.unique(nxt, return_counts=True)
        if (counts > 1).any() or (len(relch) and np.isin(uniq, relch).any()):
            for w in ws.tolist():
                self._advance_path(w)
            c.events += len(ws)
            c.scalar_fallback_events += len(ws)
            return
        free = self.in_use[nxt] < self.cap[nxt]
        if free.all():
            mv, mch, moff, midx, mrelhop, mhasrel = ws, nxt, off, idx, relhop, hasrel
        else:
            blocked = np.flatnonzero(~free)
            for j in blocked.tolist():
                self._block(int(ws[j]), int(nxt[j]))
            sel = np.flatnonzero(free)
            mv = ws[sel]
            mch = nxt[sel]
            moff = off[sel]
            midx = idx[sel]
            mrelhop = relhop[sel]
            mhasrel = hasrel[sel]
            if not len(mv):
                c.batched_events += len(ws)
                c.batches += 1
                return
        self.in_use[mch] += 1  # unique per the interaction guard
        self.w_idx[mv] = midx + 1
        if mhasrel.any():
            rsel = np.flatnonzero(mhasrel)
            rpos = moff[rsel] + mrelhop[rsel]
            rch = self.rp_chan[rpos]
            np.subtract.at(self.in_use, rch, 1)
            if self._waiter_total:
                for cid in rch.tolist():
                    self._wake(cid)
            dmask = self.rp_dest[rpos]
            if dmask.any():
                dj = np.flatnonzero(dmask)
                mids = self.w_mid[mv[rsel[dj]]]
                injs = self.w_inj[mv[rsel[dj]]]
                for mid, inj, p in zip(mids.tolist(), injs.tolist(), rpos[dj].tolist()):
                    self._deliver(mid, self.rp_head[p], inj)
        # next steps, in run order, as one chunk
        b = self._bucket(self.tick + 1)
        steps = mv.tolist()
        if b and type(b[-1]) is list:
            b[-1].extend(steps)
        else:
            b.append(steps)
        c.batched_events += len(ws)
        c.batches += 1
        if len(ws) > c.max_batch_width:
            c.max_batch_width = len(ws)

    def _run_arrivals(self, ws: np.ndarray) -> None:
        c = self.counters
        if len(ws) < self.BATCH_MIN:
            for w in ws.tolist():
                self._arrive_path(w)
            c.events += len(ws)
            return
        D = self.w_len[ws]
        F = self.w_flits[ws]
        pend = self._pending
        # drain: hop D-F+d releases at delay d; group the run by delay,
        # preserving worm order inside each group
        for d in range(int(F.max())):
            el = (F > d) & (D + d - F >= 0)
            if not el.any():
                continue
            sub = ws[el]
            hops = (D + d - F)[el]
            if d == 0:
                pend.append((_BREL, sub, hops))
            else:
                self._at(d, (_BREL, sub, hops))
        for fv in np.unique(F).tolist():
            sub = ws[F == fv]
            if fv == 1:
                pend.append((_BFIN, sub))
            else:
                self._at(fv - 1, (_BFIN, sub))
        c.batched_events += len(ws)
        c.batches += 1
        if len(ws) > c.max_batch_width:
            c.max_batch_width = len(ws)

    def _process_brel(self, ws: np.ndarray, hops: np.ndarray) -> None:
        pos = self.w_off[ws] + hops
        rch = self.rp_chan[pos]
        np.subtract.at(self.in_use, rch, 1)
        if self._waiter_total:
            for cid in rch.tolist():
                self._wake(cid)
        dmask = self.rp_dest[pos]
        if dmask.any():
            dj = np.flatnonzero(dmask)
            mids = self.w_mid[ws[dj]]
            injs = self.w_inj[ws[dj]]
            for mid, inj, p in zip(mids.tolist(), injs.tolist(), pos[dj].tolist()):
                self._deliver(mid, self.rp_head[p], inj)
        self.counters.batched_events += len(ws)

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self) -> bool:
        """Run the calendar dry.  Returns True if every worm finished;
        False indicates deadlock (blocked worms, no pending events)."""
        buckets = self.buckets
        heap = self.tick_heap
        c = self.counters
        tickvec = self.tickvec
        while heap:
            t = heapq.heappop(heap)
            pending = buckets.pop(t)
            self.tick = t
            self._pending = pending
            c.ticks += 1
            if tickvec:
                # multi-tick frontier batching: a window of upcoming
                # ticks may be provably interaction-free (no touched
                # channel has waiters, every acquire fits) and drain in
                # one vectorized commit
                if not self._win_cool:
                    if self._run_window(t, pending):
                        continue
                else:
                    self._win_cool -= 1
                self._run_tick_vec(pending)
            else:
                self._run_classic(pending, 0)
        self._pending = []
        return self.active_worms == 0

    def _run_classic(self, pending: list, i: int) -> None:
        """Dispatch ``pending[i:]`` (live — entries may append) one
        event at a time, in exact reference order."""
        c = self.counters
        step_path = self._step_path
        step_adaptive = self._step_adaptive
        faulty = self.faulty
        while i < len(pending):
            e = pending[i]
            i += 1
            if type(e) is list:
                self._process_chunk(e)
                continue
            k = e[0]
            if k == _STEP:
                w = e[1]
                # NB: self.w_kind is re-read per event — _new_worm
                # reallocates the worm arrays when they grow
                if self.w_kind[w] == _PATH:
                    step_path(w)
                else:
                    step_adaptive(w)
                c.events += 1
            elif k == _REL:
                w = e[1]
                if not (faulty and self.w_dead[w]):
                    if self.w_kind[w] == _ADAPTIVE:
                        self._release_adaptive_hop(w, e[2])
                    else:
                        self._release_path_hop(w, e[2])
                c.events += 1
            elif k == _ARR:
                self._arrive_path(e[1])
                c.events += 1
            elif k == _BREL:
                self._process_brel(e[1], e[2])
            elif k == _BFIN:
                self.active_worms -= len(e[1])
                c.batched_events += len(e[1])
            elif k == _FIN:
                self._finish(e[1])
                c.events += 1
            elif k == _TTICK:
                self._step_tree(e[1])
                c.events += 1
            elif k == _TREL:
                w = e[1]
                if not (faulty and self.w_dead[w]):
                    self._release_tree_level(w, e[2])
                c.events += 1
            elif k == _CALL:
                e[1](*e[2])
                c.events += 1
            else:  # _DEFER: join the end of the immediate lane
                pending.append((_CALL, e[1], e[2]))

    # ------------------------------------------------------------------
    # Multi-tick frontier batching (tick-vector mode).
    # ------------------------------------------------------------------
    #
    # An unblocked path worm's trajectory is a straight line: a worm at
    # cursor i0 when tick t starts acquires route position p at tick
    # t + (p - i0), releases it (delivering if flagged) at
    # t + (p - i0) + F, arrives at a = t + (L - i0) and finishes at
    # a + F - 1 — provided no acquire ever blocks.  A window [t, E) is
    # *sound* when (1) no touched channel has a waiter queue (blocked
    # worms elsewhere cannot interact: their wake would need a release
    # on their own channel, which is untouched), (2) no channel is
    # touched twice at the same tick and (3) a segmented occupancy scan
    # proves every windowed acquire fits under its channel's capacity
    # given every windowed release.  A sound window admits no block,
    # wake or queue-jump, so all K ticks commit in one fixed set of
    # array ops;
    # the delivery stream is replayed in exact reference order from a
    # closed-form sort key (see _run_window).  Any foreign calendar
    # entry (injection, deferred call, non-path worm) clips the window,
    # and a failed proof falls back to one-tick dispatch, so parity is
    # preserved unconditionally.

    #: frontier windows never merge more than this many ticks
    WIN_MAX = 512

    def _run_window(self, t: int, pending: list) -> bool:
        """Try to drain every event in ``[t, t + win_k)`` in one
        vectorized commit.  Returns False — with no state mutated —
        when the window cannot be proven sound; the caller then runs
        tick ``t`` through the ordinary one-tick dispatch."""
        c = self.counters
        heap = self.tick_heap
        buckets = self.buckets
        E = t + self._win_k
        # -- phase 1: scan tick t itself, before touching the heap —
        # a foreign entry (injection, deferred call, non-path worm)
        # here is the common bail and must stay cheap (code 3 =
        # pre-scheduled finish)
        ow: list[int] = []
        ocode: list[int] = []
        oarg: list[int] = []
        for e in pending:
            if type(e) is list:
                ow.extend(e)
                k = len(e)
                ocode.extend([0] * k)
                oarg.extend([-1] * k)
                continue
            k = e[0]
            if k == _REL:
                ow.append(e[1])
                ocode.append(1)
                oarg.append(e[2])
            elif k == _ARR:
                ow.append(e[1])
                ocode.append(2)
                oarg.append(-1)
            elif k == _FIN:
                ow.append(e[1])
                ocode.append(3)
                oarg.append(-1)
            else:
                return False
        # -- phase 2: collect the window's pre-scheduled buckets; any
        # entry besides an arrival drain (_REL/_FIN) clips the window
        taken: list = []
        while heap and heap[0] < E:
            tk = heap[0]
            b = buckets[tk]
            ok = True
            for e in b:
                k = e[0] if type(e) is tuple else -1
                if k != _REL and k != _FIN:
                    ok = False
                    break
            if not ok:
                E = tk
                break
            heapq.heappop(heap)
            del buckets[tk]
            taken.append((tk, b))
        if E - t < 2:
            for tk, b in taken:
                heapq.heappush(heap, tk)
                buckets[tk] = b
            return False
        wv = np.array(ow, dtype=np.int64)
        code = np.array(ocode, dtype=np.int8)
        arg = np.array(oarg, dtype=np.int64)
        mrows = np.flatnonzero((code == 0) | (code == 2))
        mw = wv[mrows]
        i0 = self.w_idx[mw]
        off = self.w_off[mw]
        L = self.w_len[mw]
        F = self.w_flits[mw]
        arr = t + L - i0
        fin = arr + F - 1
        # pre-scheduled drains: tick-t release rows + collected buckets
        rel_rows = np.flatnonzero(code == 1)
        pos_b = self.w_off[wv[rel_rows]] + arg[rel_rows]
        ch_b = self.rp_chan[pos_b]
        n_fin0 = int(np.count_nonzero(code == 3))
        pre_w: list[int] = []
        pre_p: list[int] = []
        pre_tk: list[int] = []
        pre_ix: list[int] = []
        fin_tk: list[int] = []
        for tk, b in taken:
            j = 0
            for e in b:
                if e[0] == _REL:
                    pre_w.append(e[1])
                    pre_p.append(e[2])
                    pre_tk.append(tk)
                    pre_ix.append(j)
                    j += 1
                else:
                    fin_tk.append(tk)
        pw_full = np.array(pre_w, dtype=np.int64)
        pos_p_full = self.w_off[pw_full] + np.array(pre_p, dtype=np.int64)
        ch_p_full = self.rp_chan[pos_p_full]
        tk_p_full = np.array(pre_tk, dtype=np.int64)
        pre_ix_full = np.array(pre_ix, dtype=np.int64)
        fin_tka = np.array(fin_tk, dtype=np.int64)
        # -- phase 3: soundness proof, clipping to the sound prefix.
        # Per-channel event trajectories ordered by tick: any touch of
        # a waiter channel or any acquire the segmented occupancy scan
        # cannot fit shrinks the window to end just before the first
        # conflicting tick, and the smaller window is re-proven.
        while True:
            K_eff = E - t
            # windowed trajectory slices (route positions p)
            a_hi = np.minimum(L, i0 + K_eff)
            r_lo = np.maximum(0, i0 - F)
            r_hi = np.maximum(r_lo, np.minimum(L, i0 + K_eff - F))
            rep_a, p_a = _ragged(i0, a_hi - i0)
            rep_r, p_r = _ragged(r_lo, r_hi - r_lo)
            ch_a = self.rp_chan[off[rep_a] + p_a]
            tk_a = t + p_a - i0[rep_a]
            pos_r = off[rep_r] + p_r
            ch_r = self.rp_chan[pos_r]
            tk_r = t + p_r + F[rep_r] - i0[rep_r]
            psel = tk_p_full < E
            pw = pw_full[psel]
            pos_p = pos_p_full[psel]
            ch_p = ch_p_full[psel]
            tk_p = tk_p_full[psel]
            pre_ixa = pre_ix_full[psel]
            ch_all = np.concatenate([ch_a, ch_r, ch_b, ch_p])
            if not ch_all.size:
                break
            tk_all = np.concatenate(
                [tk_a, tk_r, np.full(ch_b.size, t, dtype=np.int64), tk_p]
            )
            t_bad = E
            # waiters elsewhere are harmless, but a touched channel
            # with a waiter queue could wake or queue-jump mid-window
            if self._waiter_total:
                wmask = self.has_waiters[ch_all]
                if bool(np.any(wmask)):
                    t_bad = int(tk_all[wmask].min())
            ds = np.ones(ch_all.size, dtype=np.int64)
            ds[ch_a.size:] = -1
            # stable sort puts acquires before releases within a
            # (channel, tick) tie: the occupancy scan then proves the
            # worst-case intra-tick order fits, so the real bucket
            # order (which can only release earlier) fits too and no
            # acquire can block
            o = np.lexsort((tk_all, ch_all))
            chs = ch_all[o]
            ds = ds[o]
            same = chs[1:] == chs[:-1]
            cs = np.cumsum(ds)
            starts = np.flatnonzero(
                np.concatenate([[True], ~same])
            )
            counts = np.diff(np.concatenate([starts, [chs.size]]))
            base = np.repeat(cs[starts] - ds[starts], counts)
            occ = cs - base + self.in_use[chs]
            viol = (ds > 0) & (occ > self.cap[chs])
            if bool(np.any(viol)):
                t_bad = min(t_bad, int(tk_all[o][viol].min()))
            if t_bad >= E:
                break
            c.array_ops += 30
            if t_bad - t < 2:
                for tk, b in taken:
                    heapq.heappush(heap, tk)
                    buckets[tk] = b
                c.window_aborts += 1
                self._win_k = max(2, self._win_k >> 1)
                self._win_bad += 1
                if self._win_bad >= 4:
                    self._win_bad = 0
                    self._win_cool = self._win_cool_len
                    self._win_cool_len = min(1024, self._win_cool_len * 2)
                return False
            E = t_bad
        # conflicting-suffix buckets go back on the calendar
        if taken and taken[-1][0] >= E:
            keep: list = []
            for tk, b in taken:
                if tk >= E:
                    heapq.heappush(heap, tk)
                    buckets[tk] = b
                else:
                    keep.append((tk, b))
            taken = keep
        n_pre_fin = n_fin0 + int(np.count_nonzero(fin_tka < E))
        # -- phase 4: commit.  Channel occupancy moves by each
        # channel's net windowed delta; cursors jump to the window end
        if ch_all.size:
            ends = starts + counts - 1
            net = cs[ends] - (cs[starts] - ds[starts])
            self.in_use[chs[starts]] += net.astype(np.int32)
        if mrows.size:
            self.w_idx[mw] = a_hi
        nfin_w = int(np.count_nonzero(fin < E))
        self.active_worms -= nfin_w + n_pre_fin
        # deliveries, replayed in exact reference order.  Within one
        # tick the bucket runs (a) drains appended by arrivals >= 2
        # ticks back, ordered by (arrival tick, frontier row); then (b)
        # the frontier walk in row order — step releases interleaved
        # with day-1 drains of worms that arrived the tick before; then
        # (c) the post-round pending drains of worms arriving this very
        # tick, in row order.  The (tick, category, key1, key2) sort
        # below reproduces that order in closed form.
        dm_r = self.rp_dest[pos_r]
        dm_b = self.rp_dest[pos_b]
        dm_p = self.rp_dest[pos_p]
        ndel = int(dm_r.sum()) + int(dm_b.sum()) + int(dm_p.sum())
        if ndel:
            fr = np.flatnonzero(dm_r)
            arr_f = arr[rep_r[fr]]
            tau_f = tk_r[fr]
            row_f = mrows[rep_r[fr]]
            cat_f = np.where(
                tau_f >= arr_f + 2, 0, np.where(tau_f == arr_f, 2, 1)
            )
            drain = cat_f == 0
            k1_f = np.where(drain, arr_f, row_f)
            k2_f = np.where(drain, row_f, 0)
            br = np.flatnonzero(dm_b)
            pr_ = np.flatnonzero(dm_p)
            tau = np.concatenate(
                [tau_f, np.full(br.size, t, dtype=np.int64), tk_p[pr_]]
            )
            cat = np.concatenate(
                [
                    cat_f,
                    np.ones(br.size, dtype=np.int64),
                    np.full(pr_.size, -1, dtype=np.int64),
                ]
            )
            k1 = np.concatenate(
                [
                    k1_f,
                    rel_rows[br],
                    pre_ixa[pr_],
                ]
            )
            k2 = np.concatenate(
                [k2_f, np.zeros(br.size + pr_.size, dtype=np.int64)]
            )
            dw = np.concatenate([mw[rep_r[fr]], wv[rel_rows[br]], pw[pr_]])
            dpos = np.concatenate([pos_r[fr], pos_b[br], pos_p[pr_]])
            so = np.lexsort((k2, k1, cat, tau))
            mids = self.w_mid[dw[so]].tolist()
            injs = self.w_inj[dw[so]].tolist()
            poss = dpos[so].tolist()
            taus = tau[so].tolist()
            heads = self.rp_head
            self.d_mid.extend(mids)
            self.d_inj.extend(injs)
            self.d_tick.extend(taus)
            self.d_node.extend([heads[p] for p in poss])
            c.deliveries += ndel
        # residual events past the window end, appended in virtual
        # execution order: first the drains of worms arriving by E-2
        # (by arrival tick then row), then the bucket-E frontier walk —
        # surviving movers as one chunk, split in row order by arrival
        # markers and the day-1 drains of tick-(E-1) arrivals
        transit = a_hi < L
        resid = ~transit & (arr < E) & ((r_hi < L) | (fin >= E))
        early = np.flatnonzero(resid & (arr <= E - 2))
        if early.size:
            eo = early[np.lexsort((early, arr[early]))]
            for j in eo.tolist():
                w = int(mw[j])
                base_t = t + int(F[j]) - int(i0[j])
                for p in range(int(r_hi[j]), int(L[j])):
                    self._bucket(base_t + p).append((_REL, w, p))
                if fin[j] >= E:
                    self._bucket(int(fin[j])).append((_FIN, w))
        late = resid & (arr == E - 1)
        walk = np.flatnonzero(transit | (arr == E) | late)
        if walk.size:
            ent: list = []
            cur: list = []
            tr_l = transit.tolist()
            arrE_l = (arr == E).tolist()
            for j in walk.tolist():
                w = int(mw[j])
                if tr_l[j]:
                    cur.append(w)
                    continue
                if cur:
                    ent.append(cur)
                    cur = []
                if arrE_l[j]:
                    ent.append((_ARR, w))
                    continue
                base_t = t + int(F[j]) - int(i0[j])
                for p in range(int(r_hi[j]), int(L[j])):
                    tkp = base_t + p
                    if tkp == E:
                        ent.append((_REL, w, p))
                    else:
                        self._bucket(tkp).append((_REL, w, p))
                if fin[j] == E:
                    ent.append((_FIN, w))
                elif fin[j] > E:
                    self._bucket(int(fin[j])).append((_FIN, w))
            if cur:
                ent.append(cur)
            if ent:
                self._bucket(E).extend(ent)
        # the reference pops a bucket for every in-window event tick;
        # land self.tick on the last of them so ``now`` stays exact
        # even when the calendar runs dry inside the window
        last = t
        if tk_a.size:
            last = max(last, int(tk_a.max()))
        if tk_r.size:
            last = max(last, int(tk_r.max()))
        if tk_p.size:
            last = max(last, int(tk_p.max()))
        if mrows.size:
            inwin = arr[arr < E]
            if inwin.size:
                last = max(last, int(inwin.max()))
            finwin = fin[fin < E]
            if finwin.size:
                last = max(last, int(finwin.max()))
        self.tick = last
        c.ticks += last - t
        c.windows += 1
        c.window_hist[K_eff] = c.window_hist.get(K_eff, 0) + 1
        c.array_ops += 46
        nbatch = int(ch_all.size) + nfin_w + n_pre_fin
        c.batched_events += nbatch
        if nbatch > c.max_batch_width:
            c.max_batch_width = nbatch
        self._win_bad = 0
        self._win_k = min(self.WIN_MAX, self._win_k * 2)
        self._win_cool_len = 16
        return True

    # ------------------------------------------------------------------
    # Tick-vector dispatch (path-worm-only runs).
    # ------------------------------------------------------------------
    #
    # One tick is processed in rounds; a round is the slice of the
    # bucket present when it starts (releases that wake waiters and
    # same-tick drain releases append behind it and form the next
    # round, exactly as the reference's immediate lane runs after the
    # already-queued events).  Each round makes three passes:
    #
    # 1. scan — gather step/release ops in calendar order; injections
    #    (_CALL) run inline and record their first step through
    #    ``_inject_hook`` so it keeps its calendar position.
    # 2. classify + batch — a channel is *dirty* this round if it has
    #    waiters, is touched by more than one op, or is a busy mover
    #    target; everything else is *clean*.  Clean ops touch disjoint
    #    free channels, so they commute: one set of array ops applies
    #    all their acquisitions and releases at once.
    # 3. emit — walk the ops once more in calendar order: dirty ops run
    #    the exact scalar kernels at their original position (blocking,
    #    FIFO wakes and kernel-order emission included), clean ops just
    #    append their pre-computed deliveries and next-tick steps.
    #
    # Order-sensitive interactions only ever involve dirty channels,
    # and every op touching one executes in exact calendar order, so
    # the dispatch stays event-for-event equal to the reference.

    def _run_tick_vec(self, pending: list) -> None:
        c = self.counters
        start = 0
        while start < len(pending):
            end = len(pending)
            ow: list[int] = []
            ocode: list[int] = []
            oarg: list[int] = []
            self._round_defers = []
            self._inject_hook = (ow, ocode, oarg)
            i = start
            fallback = False
            while i < end:
                e = pending[i]
                i += 1
                if type(e) is list:
                    ow.extend(e)
                    k = len(e)
                    ocode.extend([0] * k)
                    oarg.extend([-1] * k)
                    continue
                k = e[0]
                if k == _REL:
                    ow.append(e[1])
                    ocode.append(1)
                    oarg.append(e[2])
                elif k == _ARR:
                    ow.append(e[1])
                    ocode.append(2)
                    oarg.append(-1)
                elif k == _STEP:
                    w = e[1]
                    if self.w_kind[w] != _PATH:
                        i -= 1
                        fallback = True
                        break
                    ow.append(w)
                    ocode.append(0)
                    oarg.append(-1)
                elif k == _FIN:
                    self._finish(e[1])
                    c.events += 1
                elif k == _CALL:
                    e[1](*e[2])
                    c.events += 1
                else:
                    i -= 1
                    fallback = True
                    break
            self._inject_hook = None
            self._exec_ops(ow, ocode, oarg)
            if fallback:
                # foreign entry (tree/adaptive/deferred work): finish
                # the tick through the ordered scalar dispatcher
                self._run_classic(pending, i)
                return
            start = end

    def _exec_ops(self, ow: list, ocode: list, oarg: list) -> None:
        n_ops = len(ow)
        defs = self._round_defers
        if not n_ops:
            for _, dtk, dent in defs:
                self._bucket(dtk).append(dent)
            return
        c = self.counters
        nd = len(defs)
        if n_ops < self.BATCH_MIN:
            di = 0
            for r, (w, kd, a) in enumerate(zip(ow, ocode, oarg)):
                while di < nd and defs[di][0] <= r:
                    _, dtk, dent = defs[di]
                    di += 1
                    self._bucket(dtk).append(dent)
                if kd == 0:
                    self._advance_path(w)
                elif kd == 1:
                    self._release_path_hop(w, a)
                else:
                    self._arrive_path(w)
            while di < nd:
                _, dtk, dent = defs[di]
                di += 1
                self._bucket(dtk).append(dent)
            c.events += n_ops
            return
        c.rounds += 1
        c.array_ops += 18
        wv = np.array(ow, dtype=np.int64)
        code = np.array(ocode, dtype=np.int8)
        arg = np.array(oarg, dtype=np.int64)
        mvmask = code == 0
        relmask = code == 1
        off = self.w_off[wv]
        idx = self.w_idx[wv]
        F = self.w_flits[wv]
        wlen = self.w_len[wv]
        # positions are computed unmasked: rows of the wrong kind read
        # garbage that every later use masks out, and the reads stay in
        # bounds (the route pool keeps a slack slot, and negative
        # offsets stay within numpy's wrap-around range)
        target = self.rp_chan[off + idx]
        tail_hop = idx - F
        has_tail = mvmask & (tail_hop >= 0)
        tailpos = off + tail_hop
        tailch = self.rp_chan[tailpos]
        rpos = off + arg
        relch = self.rp_chan[rpos]
        busy = self.in_use[target] >= self.cap[target]
        acq = target[mvmask]
        touched = np.concatenate([acq, tailch[has_tail], relch[relmask]])
        srt = np.sort(touched)
        dup = srt[1:][srt[1:] == srt[:-1]]
        fast = dup.size == 0
        if fast and self._waiter_total:
            # releases into channels with waiters must run the scalar
            # wake path; a blocked mover merely joins the queue, so
            # only the release streams force the full census below
            h = self.has_waiters
            fast = not (
                bool(h[tailch[has_tail]].any())
                or bool(h[relch[relmask]].any())
            )
        rinfo = None
        if fast:
            # common case: every touched channel is touched exactly
            # once — busy mover targets block deterministically (no
            # release can free them this round), everything else
            # commutes
            rd = np.zeros(n_ops, dtype=bool)
            blkrow = mvmask & busy
            c.array_ops += 2
        else:
            # a channel is order-sensitive (dirty) when it has waiters,
            # several same-kind touches, or contested capacity (full
            # with at least one acquire and one release this round).
            # Every row touching a dirty channel is routed through the
            # ordered convoy resolver: the emission walk below settles
            # those rows in exact calendar order against a lazy
            # occupancy ledger, reproducing the scalar kernels'
            # check-block-acquire-release order, FIFO waiter wakeups
            # and same-round queue-jumps without per-row array reads.
            c.resolver_rounds += 1
            uniq, inv = np.unique(touched, return_inverse=True)
            na = int(acq.size)
            mvrows = np.flatnonzero(mvmask)
            tailrows = np.flatnonzero(has_tail)
            relrows = np.flatnonzero(relmask)
            nt = tailrows.size
            acq_cnt = np.bincount(inv[:na], minlength=uniq.size)
            rel_cnt = np.bincount(inv[na:], minlength=uniq.size)
            acq_pos = np.bincount(
                inv[:na], weights=mvrows, minlength=uniq.size
            )
            rel_pos = np.bincount(
                inv[na:],
                weights=np.concatenate([tailrows, relrows]),
                minlength=uniq.size,
            )
            multi_u = (acq_cnt > 1) | (rel_cnt > 1)
            full_u = self.in_use[uniq] >= self.cap[uniq]
            # a full channel with no release this round rejects every
            # acquire: its movers block deterministically in row order
            # (joining any existing waiter queue is fine — FIFO
            # position only depends on enqueue order)
            blk_u = full_u & (rel_cnt == 0)
            pairable = (acq_cnt == 1) & (rel_cnt == 1) & ~multi_u & full_u
            # <= so a worm whose head reaches its own held tail channel
            # blocks exactly as the reference does (check-then-release)
            acq_first = acq_pos <= rel_pos
            pair_u = pairable & ~acq_first  # release hands the slot on
            # acquire runs first and loses: the mover blocks, and the
            # release must resolve in order so its wake catches the
            # fresh waiter enqueued earlier in the emission walk
            blk2_u = pairable & acq_first
            bad_u = multi_u
            if self._waiter_total:
                # releases into channels with waiters take the ordered
                # wake path; acquires need no care — the reference lets
                # a same-round acquire beat woken waiters, which only
                # retry next round
                bad_u = bad_u | self.has_waiters[uniq]
            mv_inv = inv[:na]
            tail_inv = inv[na : na + nt]
            rel_inv = inv[na + nt :]
            mv_blk = blk_u[mv_inv] | blk2_u[mv_inv]
            blkrow = np.zeros(n_ops, dtype=bool)
            blkrow[mvmask] = mv_blk
            rd = np.zeros(n_ops, dtype=bool)
            rd[mvmask] = (
                multi_u[mv_inv] | (busy[mvmask] & ~pair_u[mv_inv])
            ) & ~mv_blk
            rd[has_tail] |= bad_u[tail_inv] | blk2_u[tail_inv]
            rd[relmask] |= bad_u[rel_inv] | blk2_u[rel_inv]
            pu = np.flatnonzero(pair_u)
            if pu.size:
                qa = acq_pos[pu].astype(np.int64).tolist()
                pr = rel_pos[pu].astype(np.int64).tolist()
                for q, p in sorted(zip(qa, pr)):
                    # the handoff needs its release to actually run: a
                    # blocked or resolver-routed releasing *mover* may
                    # keep the slot, while a pure release always
                    # releases (a wake-path release still frees it)
                    if blkrow[p] or (rd[p] and ocode[p] != 1):
                        rd[q] = True
            res = np.flatnonzero(rd)
            rinfo = list(
                zip(
                    target[res].tolist(),
                    tail_hop[res].tolist(),
                    tailch[res].tolist(),
                    tailpos[res].tolist(),
                    relch[res].tolist(),
                    rpos[res].tolist(),
                    idx[res].tolist(),
                    wlen[res].tolist(),
                    self.w_mid[wv[res]].tolist(),
                    self.w_inj[wv[res]].tolist(),
                    self.rp_dest[tailpos[res]].tolist(),
                    self.rp_dest[rpos[res]].tolist(),
                )
            )
            c.resolver_events += len(rinfo)
            c.array_ops += 34
        scalar_rows = rd | (code == 2)
        # batch the clean state transitions (channels are unique across
        # every clean acquire and release, so plain fancy indexing is a
        # correct scatter)
        cm = mvmask & ~rd & ~blkrow
        cmw = wv[cm]
        if cmw.size:
            self.in_use[target[cm]] += 1
            self.w_idx[cmw] = idx[cm] + 1
        # a blocked mover does not advance, so it keeps (and does not
        # release) its tail channel
        ct = has_tail & ~rd & ~blkrow
        if ct.any():
            self.in_use[tailch[ct]] -= 1
        cr = relmask & ~rd
        if cr.any():
            self.in_use[relch[cr]] -= 1
        dlv = (ct & self.rp_dest[tailpos]) | (cr & self.rp_dest[rpos])
        dpos = np.where(ct, tailpos, rpos)
        nend = cm & (idx + 1 == wlen)
        n_scalar = int(scalar_rows.sum())
        n_clean = n_ops - n_scalar
        c.events += n_scalar - (len(rinfo) if rinfo is not None else 0)
        c.array_ops += 10
        if n_clean:
            c.batched_events += n_clean
            c.batches += 1
            if n_clean > c.max_batch_width:
                c.max_batch_width = n_clean
        # emission pass, in calendar order.  Runs of clean,
        # non-delivering, non-ending movers dominate and are appended to
        # the next tick's chunk as C-speed list slices; only "special"
        # rows — scalar, releasing, delivering, or route-ending — are
        # visited one by one.  Clean releases emit nothing at t+1, so a
        # chunk stays open across them.
        tick1 = self.tick + 1
        b1 = None
        chunk = None
        special = scalar_rows | relmask | dlv | nend | blkrow
        spl = np.flatnonzero(special).tolist()
        rd_l = rd.tolist()
        blk_l = blkrow.tolist()
        dlv_l = dlv.tolist()
        nend_l = nend.tolist()
        # convoy-resolver state: a lazy per-channel occupancy ledger
        # ([in_use, cap], first touch reads the arrays once) plus the
        # deferred cursor updates, scattered back in bulk after the walk
        occ: dict = {}
        adv_w: list[int] = []
        adv_i: list[int] = []
        ri = 0
        in_use_ = self.in_use
        cap_ = self.cap
        rp_head = self.rp_head
        prev = 0
        di = 0
        for r in spl:
            while di < nd and defs[di][0] <= r:
                # replay a scheduling call captured during the scan at
                # its calendar position (splitting any open clean run
                # so bucket order matches the reference kernel's)
                dp, dtk, dent = defs[di]
                di += 1
                if dp > prev:
                    run = ow[prev:dp]
                    if chunk is not None:
                        chunk.extend(run)
                    else:
                        chunk = run
                        if b1 is None:
                            b1 = self._bucket(tick1)
                        b1.append(chunk)
                    prev = dp
                self._bucket(dtk).append(dent)
                chunk = None
            if r > prev:
                run = ow[prev:r]
                if chunk is not None:
                    chunk.extend(run)
                else:
                    chunk = run
                    if b1 is None:
                        b1 = self._bucket(tick1)
                    b1.append(chunk)
            prev = r + 1
            w = ow[r]
            kd = ocode[r]
            if rd_l[r]:
                # ordered convoy resolver: settle this row against the
                # occupancy ledger at its exact calendar position,
                # mirroring the scalar kernels' check-block-acquire-
                # release order, FIFO wakes and queue-jump semantics
                tgt, th, tc, tp, rc, rpp, ix, wl, mid, inj, tdf, rdf = rinfo[ri]
                ri += 1
                if kd == 1:
                    e = occ.get(rc)
                    if e is None:
                        e = occ[rc] = [int(in_use_[rc]), 0]
                    e[0] -= 1
                    if self._waiter_total:
                        self._wake(rc)
                    if rdf:
                        self._deliver(mid, rp_head[rpp], inj)
                else:
                    e = occ.get(tgt)
                    if e is None:
                        e = occ[tgt] = [int(in_use_[tgt]), int(cap_[tgt])]
                    elif not e[1]:
                        e[1] = int(cap_[tgt])
                    if e[0] >= e[1]:
                        self._block(w, tgt)
                    else:
                        e[0] += 1
                        if th >= 0:
                            te = occ.get(tc)
                            if te is None:
                                te = occ[tc] = [int(in_use_[tc]), 0]
                            te[0] -= 1
                            if self._waiter_total:
                                self._wake(tc)
                            if tdf:
                                self._deliver(mid, rp_head[tp], inj)
                        ni = ix + 1
                        adv_w.append(w)
                        adv_i.append(ni)
                        if ni == wl:
                            if b1 is None:
                                b1 = self._bucket(tick1)
                            b1.append((_ARR, w))
                            chunk = None
                        elif chunk is not None:
                            chunk.append(w)
                        else:
                            chunk = [w]
                            if b1 is None:
                                b1 = self._bucket(tick1)
                            b1.append(chunk)
            elif kd == 2:
                chunk = None
                self._arrive_path(w)
            elif blk_l[r]:
                # deterministically rejected acquire: enqueue as a
                # waiter (row order preserves FIFO) and emit nothing
                self._block(w, int(target[r]))
            elif kd == 0:
                if dlv_l[r]:
                    self._deliver(
                        int(self.w_mid[w]),
                        self.rp_head[int(dpos[r])],
                        int(self.w_inj[w]),
                    )
                if nend_l[r]:
                    if b1 is None:
                        b1 = self._bucket(tick1)
                    b1.append((_ARR, w))
                    chunk = None
                elif chunk is not None:
                    chunk.append(w)
                else:
                    chunk = [w]
                    if b1 is None:
                        b1 = self._bucket(tick1)
                    b1.append(chunk)
            elif dlv_l[r]:
                self._deliver(
                    int(self.w_mid[w]),
                    self.rp_head[int(dpos[r])],
                    int(self.w_inj[w]),
                )
        while di < nd:
            dp, dtk, dent = defs[di]
            di += 1
            if dp > prev:
                run = ow[prev:dp]
                if chunk is not None:
                    chunk.extend(run)
                else:
                    chunk = run
                    if b1 is None:
                        b1 = self._bucket(tick1)
                    b1.append(chunk)
                prev = dp
            self._bucket(dtk).append(dent)
            chunk = None
        if n_ops > prev:
            run = ow[prev:]
            if chunk is not None:
                chunk.extend(run)
            else:
                if b1 is None:
                    b1 = self._bucket(tick1)
                b1.append(run)
        if occ:
            ks = np.fromiter(occ.keys(), dtype=np.int64, count=len(occ))
            self.in_use[ks] = np.fromiter(
                (e[0] for e in occ.values()), dtype=np.int32, count=len(occ)
            )
            c.array_ops += 2
        if adv_w:
            self.w_idx[np.array(adv_w, dtype=np.int64)] = adv_i
            c.array_ops += 2

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def cache_stats(self) -> dict:
        """Engine counters plus table sizes, as a plain dict (the same
        shape as ``Topology.cache_stats``)."""
        out = self.counters.to_dict()
        out["channels"] = self.n_chan
        out["route_pool_used"] = int(self.rp_used)
        return out

    def latencies(self, cutoff: float) -> list[float]:
        """Per-delivery latency (seconds) for messages after the warmup
        ``cutoff``, in delivery order."""
        tf = self.tf
        # computed as delivered_at - injected_at (not (t - inj) * tf) so
        # the floats match the reference model's Delivery.latency
        return [
            t * tf - inj * tf
            for mid, inj, t in zip(self.d_mid, self.d_inj, self.d_tick)
            if mid > cutoff
        ]

    def deliveries(self):
        """The delivery stream as reference-model ``Delivery`` objects."""
        from .reference import Delivery

        tf = self.tf
        return [
            Delivery(mid, node, inj * tf, t * tf)
            for mid, node, inj, t in zip(
                self.d_mid, self.d_node, self.d_inj, self.d_tick
            )
        ]
