"""Deterministic unicast wormhole routing and its CDG (§2.3, Fig. 2.5).

The well-known deadlock-free deterministic schemes the dissertation
builds on: X-first (XY) routing for 2D meshes and e-cube routing for
hypercubes.  :func:`unicast_cdg` constructs the Dally–Seitz channel
dependency graph of any next-hop routing function over all
(position, destination) pairs — reproducing Fig. 2.5's construction —
and the test-suite certifies acyclicity for X-first/e-cube and
exhibits the cycle for the (deadlock-prone) Y-first-then-X-then-Y
adaptive counterexamples.
"""

from __future__ import annotations

from collections.abc import Callable

from ..topology.base import Node, Topology
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh2D


def xfirst_next_hop(mesh: Mesh2D, u: Node, dest: Node) -> Node | None:
    """X-first (XY) unicast routing: correct the x offset, then y."""
    if u == dest:
        return None
    x, y = u
    if x != dest[0]:
        return (x + (1 if dest[0] > x else -1), y)
    return (x, y + (1 if dest[1] > y else -1))


def ecube_next_hop(cube: Hypercube, u: Node, dest: Node) -> Node | None:
    """E-cube unicast routing: correct the lowest differing bit."""
    diff = u ^ dest
    if not diff:
        return None
    return u ^ (diff & -diff)


def label_next_hop(labeling) -> Callable:
    """The routing function R of a Hamiltonian labeling as a unicast
    next-hop function (used by the mixed-traffic study)."""

    def next_hop(_topology, u: Node, dest: Node) -> Node | None:
        if u == dest:
            return None
        return labeling.route_step(u, dest)

    return next_hop


def unicast_cdg(topology: Topology, next_hop: Callable) -> set:
    """All channel dependencies a deterministic unicast routing function
    can create: for every destination and every node on the way, the
    incoming channel the message may arrive on depends on the outgoing
    channel the function selects (§2.3.4).

    ``next_hop(topology, u, dest)`` returns the next node or None.
    The routing is deadlock-free iff the returned edge set is acyclic
    [Dally & Seitz].
    """
    # reachable incoming channels per (node, dest): simulate every route
    edges: set = set()
    for dest in topology.nodes():
        for src in topology.nodes():
            if src == dest:
                continue
            u = src
            prev: Node | None = None
            guard = 0
            while u != dest:
                v = next_hop(topology, u, dest)
                if v is None:
                    break
                if prev is not None:
                    edges.add(((prev, u), (u, v)))
                prev = u
                u = v
                guard += 1
                if guard > topology.num_nodes * 4:
                    raise RuntimeError("unicast routing did not converge")
    return edges


def yfirst_then_x_then_y_next_hop(mesh: Mesh2D, u: Node, dest: Node) -> Node | None:
    """A deliberately deadlock-prone routing: move one hop in Y first
    when possible, then X, then the rest of Y.  Mixing YX and XY turns
    creates the classic cycle of turns — the counterexample routing the
    CDG analysis catches."""
    if u == dest:
        return None
    x, y = u
    dx, dy = dest[0] - x, dest[1] - y
    # first hop of the Y offset, then all of X, then remaining Y
    if dy != 0 and abs(dy) % 2 == 1 and dx != 0:
        return (x, y + (1 if dy > 0 else -1))
    if dx != 0:
        return (x + (1 if dx > 0 else -1), y)
    return (x, y + (1 if dy > 0 else -1))
