"""Fig. 7.9 — average network latency vs number of destinations on a
double-channel 8x8 mesh, 300 us mean inter-arrival per node.

Paper shape: with larger destination sets the dependencies among tree
branches become critical and tree latency increases rapidly; the path
algorithms stay flat; dual-path overtakes multi-path for the largest
destination sets.
"""

from __future__ import annotations

from conftest import scaled

from repro.sim import SimConfig, run_dynamic
from repro.topology import Mesh2D

SCHEMES = ("tree-xfirst", "dual-path", "multi-path")
DEST_COUNTS = (1, 5, 10, 20, 30, 45)


def run():
    mesh = Mesh2D(8, 8)
    rows = []
    for k in DEST_COUNTS:
        cfg = SimConfig(
            num_messages=scaled(400),
            num_destinations=k,
            mean_interarrival=300e-6,
            channels_per_link=2,
            seed=42,
        )
        row = [k]
        for scheme in SCHEMES:
            row.append(run_dynamic(mesh, scheme, cfg).mean_latency * 1e6)
        rows.append(row)
    return rows


def test_fig7_9_dynamic_dests_double(benchmark, emit):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig7_09_dynamic_dests_double",
        "Fig 7.9: latency (us) vs destinations, double-channel 8x8 mesh, 300us interarrival",
        ["k"] + list(SCHEMES),
        rows,
    )
    tree = [r[1] for r in rows]
    dual = [r[2] for r in rows]
    # tree delay "increases rapidly" with destination count
    assert tree[-1] > 5 * tree[0]
    # paths stay comparatively flat
    assert dual[-1] < 3 * dual[0]
    # tree is clearly worst at the largest destination sets
    assert tree[-1] > 3 * max(rows[-1][2], rows[-1][3])
