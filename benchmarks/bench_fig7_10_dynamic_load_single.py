"""Fig. 7.10 — average network latency vs load on a single-channel
8x8 mesh: dual-path vs multi-path, 10 destinations.

Paper shape: both display good performance at low load; as the load
increases multi-path offers a slight improvement over dual-path
(it introduces less traffic).
"""

from __future__ import annotations

from conftest import scaled

from repro.sim import SimConfig, run_dynamic
from repro.topology import Mesh2D

SCHEMES = ("dual-path", "multi-path")
INTERARRIVALS_US = (2000, 1000, 500, 300, 200, 150)


def run():
    mesh = Mesh2D(8, 8)
    rows = []
    for ia in INTERARRIVALS_US:
        cfg = SimConfig(
            num_messages=scaled(400),
            num_destinations=10,
            mean_interarrival=ia * 1e-6,
            channels_per_link=1,
            seed=42,
        )
        row = [ia]
        for scheme in SCHEMES:
            row.append(run_dynamic(mesh, scheme, cfg).mean_latency * 1e6)
        rows.append(row)
    return rows


def test_fig7_10_dynamic_load_single(benchmark, emit):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig7_10_dynamic_load_single",
        "Fig 7.10: latency (us) vs inter-arrival time (us), single-channel 8x8 mesh, 10 dests",
        ["interarrival_us"] + list(SCHEMES),
        rows,
    )
    # low load: both near the contention-free floor and close together
    assert abs(rows[0][1] - rows[0][2]) < 0.3 * rows[0][1]
    # moderate-to-high load: multi-path at or below dual-path (at the
    # very deepest load point the Fig. 7.11 hot-spot effect can already
    # flip the ordering, so assert on the 500/300/200us points)
    for row in rows[2:5]:
        assert row[2] <= row[1] * 1.05
    # latency grows with load for both
    assert rows[-1][1] > rows[0][1]
