#!/usr/bin/env python
"""The §1.1 program-structure comparison, executable.

The dissertation opens with this sketch of software multicast::

    P0: send(msg,P1)      P1: ...            P2: ...
        send(msg,P2)          recv(msg,P0)       recv(msg,P0)
        send(msg,P3)

and observes: "If P0 is executing send(msg,P1) and P1 has not yet
executed the recv statement, P0 is blocked.  In the mean time P2 is
... blocked because P0 has not yet executed send(msg,P2).  Obviously,
system resources are wasted."

This example runs exactly that comparison on the simulated
multicomputer programming interface (§8.2's proposed "system supported
multicast service"):

1. *sequential synchronous sends* — P0 sends to each worker in turn,
   waiting for delivery (the workers' recv timing adds think-time skew);
2. *hardware multicast* — one ``api.multicast`` over dual-path routing.

It then runs a small iterative computation with barrier-style rounds to
show the end-to-end effect on an application.

Run:  python examples/programming_model.py
"""

from __future__ import annotations

from repro.progmodel import Multicomputer
from repro.topology import Mesh2D

WORKERS = [(5, 0), (0, 5), (5, 5), (3, 4), (1, 2)]
THINK = 20e-6  # worker think time before posting recv


def sequential_master(api, workers):
    start = api.now
    for w in workers:
        yield api.send(w, payload="update")  # synchronous: waits for delivery
    return api.now - start


def multicast_master(api, workers):
    start = api.now
    yield api.multicast(workers, payload="update")
    return api.now - start


def worker(api, results):
    yield api.delay(THINK)
    source, payload = yield api.recv()
    results.append((api.node, api.now))


def one_to_many_comparison() -> None:
    print(f"One master, {len(WORKERS)} workers, {THINK * 1e6:.0f} us think time:\n")
    for name, master in (
        ("sequential synchronous sends", sequential_master),
        ("single multicast primitive", multicast_master),
    ):
        mc = Multicomputer(Mesh2D(6, 6), scheme="dual-path")
        results: list = []
        done = mc.spawn((0, 0), master, WORKERS)
        for w in WORKERS:
            mc.spawn(w, worker, results)
        mc.run()
        print(f"  {name:<32} master completion: {done.value * 1e6:7.2f} us")


def iterative_computation(rounds: int = 5) -> None:
    """A §1.1-style iteration: each round the master multicasts the new
    boundary values; workers compute and reply; the master reduces."""
    mesh = Mesh2D(6, 6)

    def master(api, workers):
        for _ in range(rounds):
            yield api.multicast(workers, payload="boundary")
            for _ in workers:
                yield api.recv()  # gather partial results
        return api.now

    def compute_worker(api):
        for _ in range(rounds):
            yield api.recv()
            yield api.delay(15e-6)  # local compute
            yield api.send((0, 0), payload="partial")

    mc = Multicomputer(mesh, scheme="multi-path")
    done = mc.spawn((0, 0), master, WORKERS)
    for w in WORKERS:
        mc.spawn(w, compute_worker)
    mc.run()
    print(
        f"\nIterative computation ({rounds} rounds, multicast + gather): "
        f"{done.value * 1e6:.2f} us total"
    )


def main() -> None:
    one_to_many_comparison()
    iterative_computation()


if __name__ == "__main__":
    main()
