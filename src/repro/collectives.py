"""Collective operations on the multicast programming model (§1.1,
[17]: "barrier synchronization can be efficiently implemented using
multicast communication").

Built entirely from the :mod:`repro.progmodel` primitives (send /
multicast / recv), so their cost reflects the simulated network and the
chosen multicast scheme:

* :func:`barrier`   — members report to the master; the master releases
  everyone with one multicast (the §1.1 numerical-iteration use case);
* :func:`gather`    — members send values, the master collects them;
* :func:`reduce`    — gather + fold at the master;
* :func:`broadcast_value` — one multicast carrying a payload.

Each helper is a generator meant to be yielded from inside a node
program (they run in that program's process).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from .progmodel import NodeAPI


def barrier(api: NodeAPI, master, members: Sequence):
    """Barrier across ``members`` (master included implicitly).

    Usage, identically from every participant::

        yield from barrier(api, master, members)

    Members send an arrival token to the master and wait for the
    release multicast; the master collects every token and multicasts
    the release.  Returns the simulated time at which this node passed
    the barrier.
    """
    others = [m for m in members if m != master]
    if api.node == master:
        for _ in others:
            source, payload = yield api.recv()
            if payload != "barrier-arrive":
                raise RuntimeError(f"unexpected message {payload!r} during barrier")
        yield api.multicast(others, "barrier-release")
    else:
        yield api.send(master, "barrier-arrive")
        source, payload = yield api.recv()
        if payload != "barrier-release":
            raise RuntimeError(f"unexpected message {payload!r} during barrier")
    return api.now


def gather(api: NodeAPI, master, members: Sequence, value=None):
    """Gather one value per member at the master.

    Returns ``{node: value}`` at the master and ``None`` elsewhere.
    """
    others = [m for m in members if m != master]
    if api.node == master:
        collected = {master: value}
        for _ in others:
            source, payload = yield api.recv()
            collected[source] = payload
        return collected
    yield api.send(master, value)
    return None


def reduce(api: NodeAPI, master, members: Sequence, value, fold: Callable):
    """Reduce members' values at the master with a binary ``fold``.

    Returns the folded result at the master and ``None`` elsewhere.
    """
    collected = yield from gather(api, master, members, value)
    if collected is None:
        return None
    result = None
    for v in collected.values():
        result = v if result is None else fold(result, v)
    return result


def broadcast_value(api: NodeAPI, master, members: Sequence, value=None):
    """One-to-many value distribution from the master.

    Returns the value at every member (including the master).
    """
    others = [m for m in members if m != master]
    if api.node == master:
        yield api.multicast(others, value)
        return value
    source, payload = yield api.recv()
    return payload
