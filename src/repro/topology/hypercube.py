"""Hypercube (n-cube) topology (§2.1.1, Def. 4.2).

An n-cube has ``2**n`` nodes with n-bit binary addresses; two nodes are
linked iff their addresses differ in exactly one bit.  The shortest
distance is the Hamming distance ``||b(u) XOR b(v)||``.
"""

from __future__ import annotations

from collections.abc import Iterator

from .base import Node, Topology


def popcount(x: int) -> int:
    """Number of 1 bits (``||b(x)||`` in the dissertation's notation)."""
    return int(x).bit_count()


class Hypercube(Topology):
    """An n-dimensional hypercube; node addresses are ints in ``[0, 2**n)``."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("hypercube dimension must be >= 1")
        self.n = int(n)
        self._size = 1 << self.n

    def __repr__(self) -> str:
        return f"Hypercube(n={self.n})"

    @property
    def num_nodes(self) -> int:
        return self._size

    def nodes(self) -> Iterator[Node]:
        return iter(range(self._size))

    def is_node(self, v: Node) -> bool:
        return isinstance(v, int) and 0 <= v < self._size

    def neighbors(self, v: Node) -> tuple[Node, ...]:
        return tuple(v ^ (1 << i) for i in range(self.n))

    def distance(self, u: Node, v: Node) -> int:
        return popcount(u ^ v)

    def index(self, v: Node) -> int:
        return v

    def node_at(self, i: int) -> Node:
        return i

    def _compute_distance_matrix(self):
        """Vectorised Hamming distances: popcount of the XOR table."""
        import numpy as np

        ids = np.arange(self._size, dtype=np.uint64)
        xor = ids[:, None] ^ ids[None, :]
        out = np.zeros_like(xor)
        while xor.any():
            out += xor & 1
            xor >>= 1
        return out.astype(np.int64)

    def _dimension_ordered_path(self, u: Node, v: Node) -> list[Node]:
        """E-cube routing: correct differing bits lowest dimension first.

        This is the deterministic deadlock-free unicast routing used by
        first/second generation hypercube multicomputers (§2.3.2).
        """
        path = [u]
        cur = u
        diff = u ^ v
        bit = 0
        while diff:
            if diff & 1:
                cur ^= 1 << bit
                path.append(cur)
            diff >>= 1
            bit += 1
        return path

    def bits(self, v: Node) -> str:
        """The n-bit binary address string of ``v`` (MSB first)."""
        return format(v, f"0{self.n}b")

    def from_bits(self, s: str) -> Node:
        """Parse an n-bit binary address string (MSB first)."""
        if len(s) != self.n or set(s) - {"0", "1"}:
            raise ValueError(f"{s!r} is not an {self.n}-bit address")
        return int(s, 2)

    def subcube_projection(self, target: Node, a: Node, b: Node) -> Node:
        """Nearest node to ``target`` on any shortest path between a and b.

        Shortest paths between a and b stay inside the subcube where the
        bits on which a and b agree are fixed; the nearest node to
        ``target`` fixes the agreeing bits and copies target's bits
        elsewhere (§5.2, greedy ST algorithm step 4a).
        """
        agree_mask = ~(a ^ b)
        return (a & agree_mask) | (target & (a ^ b))
