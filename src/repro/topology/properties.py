"""Topology evaluation factors (§2.1).

The dissertation lists the criteria for choosing a multicomputer
topology — number of connections, regularity, diameter, scalability,
routing, robustness, throughput — and §2.1.2 argues via *bisection
density* that low-dimensional networks get wider channels for the same
wiring budget.  This module computes those factors so the §2.1
mesh-vs-hypercube comparison can be tabulated for any size.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Topology
from .hypercube import Hypercube
from .karyncube import KAryNCube
from .mesh import Mesh2D, Mesh3D


@dataclass(frozen=True)
class TopologyProfile:
    """The §2.1 evaluation factors for one topology."""

    name: str
    num_nodes: int
    num_links: int  # bidirectional connections ("number of connections")
    min_degree: int
    max_degree: int  # equal min/max = regular network
    diameter: int
    average_distance: float
    bisection_width: int  # links cut by a balanced bisection

    @property
    def is_regular(self) -> bool:
        return self.min_degree == self.max_degree

    def channel_width_at_fixed_bisection_density(self, budget: float = 1.0) -> float:
        """Relative channel width if every topology gets the same
        bisection density (§2.1.2): width ∝ budget / bisection_width.
        Low-dimensional networks score higher — "a few high-bandwidth
        channels"."""
        return budget / self.bisection_width


def bisection_width(topology: Topology) -> int:
    """Links crossing a balanced bisection.

    Analytic for the standard families (the §2.1.2 values); brute force
    would be exponential and is not attempted for other topologies.
    """
    if isinstance(topology, Mesh2D):
        w, h = topology.width, topology.height
        # cut the longer side in half
        if w >= h:
            return h if w % 2 == 0 else h  # vertical cut crosses h links
        return w
    if isinstance(topology, Mesh3D):
        dims = sorted([topology.width, topology.height, topology.depth])
        return dims[0] * dims[1]  # cut across the largest dimension
    if isinstance(topology, Hypercube):
        return topology.num_nodes // 2
    if isinstance(topology, KAryNCube):
        # cutting one dimension of a torus severs 2 rings per line
        return 2 * topology.k ** (topology.n - 1) if topology.k > 2 else topology.k ** (topology.n - 1)
    raise TypeError(f"no analytic bisection width for {topology!r}")


def average_distance(topology: Topology) -> float:
    """Mean shortest-path distance over distinct node pairs (uses the
    vectorised distance matrix)."""
    M = topology.distance_matrix()
    n = M.shape[0]
    return float(M.sum() / (n * (n - 1)))


def profile(topology: Topology, name: str | None = None) -> TopologyProfile:
    """Compute the full §2.1 factor profile."""
    degrees = [topology.degree(v) for v in topology.nodes()]
    return TopologyProfile(
        name=name or repr(topology),
        num_nodes=topology.num_nodes,
        num_links=topology.num_channels // 2,
        min_degree=min(degrees),
        max_degree=max(degrees),
        diameter=topology.diameter(),
        average_distance=average_distance(topology),
        bisection_width=bisection_width(topology),
    )
