"""The KMB Steiner-tree heuristic (Kou, Markowsky & Berman 1978; §5.2).

The classical general-graph baseline the greedy ST algorithm is
compared with: build the metric closure over the multicast set, take
its minimum spanning tree, realise each MST edge as a shortest path,
and prune.  The dissertation argues its greedy ST algorithm is at least
as good in the worst case because it also considers interior points of
shortest paths; the exact-vs-heuristic ablation benchmark quantifies
the comparison.
"""

from __future__ import annotations

from collections import defaultdict

from ..models.request import MulticastRequest
from ..models.results import MulticastTree
from ..registry import register
from ..topology.base import Node


@register(
    "kmb",
    kind="static-route",
    topologies=("mesh2d", "mesh3d", "hypercube", "torus"),
    result_model="tree",
    reference="§5.2 (Kou-Markowsky-Berman 1978 Steiner baseline)",
)
def kmb_route(request: MulticastRequest) -> MulticastTree:
    """KMB Steiner heuristic; returns a realised multicast tree."""
    topo = request.topology
    terminals = [request.source, *request.destinations]

    # 1. Minimum spanning tree of the metric closure (Prim over the
    #    oracle's terminal submatrix — k memoized BFS rows, shared with
    #    every other consumer of this topology).
    oracle = topo.oracle()
    term_idx = oracle.indices(terminals)
    closure = oracle.metric_closure(term_idx)
    in_tree = {0}
    mst_edges: list[tuple[Node, Node]] = []
    best: dict[int, tuple[int, int]] = {
        t: (closure[0][t], 0) for t in range(1, len(terminals))
    }
    while best:
        v = min(best, key=lambda t: (best[t][0], term_idx[t]))
        d, parent = best.pop(v)
        in_tree.add(v)
        mst_edges.append((terminals[parent], terminals[v]))
        row = closure[v]
        for t in best:
            d2 = row[t]
            if d2 < best[t][0]:
                best[t] = (d2, v)

    # 2. Realise each MST edge as a dimension-ordered shortest path and
    #    collect the union of physical links.
    links: set[frozenset] = set()
    for a, b in mst_edges:
        path = topo.dimension_ordered_path(a, b)
        links.update(frozenset(e) for e in zip(path, path[1:]))

    # 3. MST of the union subgraph (BFS tree suffices on unit weights),
    #    then prune non-terminal leaves.
    adj = defaultdict(set)
    for e in links:
        u, v = tuple(e)
        adj[u].add(v)
        adj[v].add(u)
    parent: dict = {request.source: None}
    order = [request.source]
    i = 0
    while i < len(order):
        u = order[i]
        i += 1
        for v in sorted(adj[u], key=topo.index):
            if v not in parent:
                parent[v] = u
                order.append(v)
    children = defaultdict(list)
    for v, p in parent.items():
        if p is not None:
            children[p].append(v)
    terminal_set = set(terminals)
    # prune leaves that are not terminals, repeatedly
    removed = True
    while removed:
        removed = False
        for v in list(parent):
            if v not in terminal_set and not children[v] and parent[v] is not None:
                children[parent[v]].remove(v)
                del parent[v]
                removed = True

    arcs = [(p, v) for v, p in parent.items() if p is not None]
    tree = MulticastTree(topo, request.source, tuple(arcs))
    tree.validate(request)
    return tree
