"""The sorted MP/MC heuristic routing algorithm (§5.1, Figs. 5.1-5.2).

A Hamilton cycle ``C`` of the host graph gives every node a position
``h``; destinations are sorted by the source-relative key ``f`` and the
message walks from one destination to the next, at every hop moving to
the neighbor with the largest ``f`` not exceeding the next
destination's ``f``.  Theorem 5.1 shows the selected edges induce a
multicast path; facts F1/F2 guarantee the Hamilton cycle exists for
meshes (one even side) and hypercubes.

The *multicast cycle* variant (for acknowledgement collection, Def. 3.2)
simply appends the source itself as a final destination with key
``m + h(u_0)``.
"""

from __future__ import annotations

from ..labeling.cycle import HamiltonCycleMapping, canonical_cycle
from ..models.request import MulticastRequest
from ..models.results import MulticastCycle, MulticastPath
from ..registry import register
from ..topology.base import Node


def sorted_mp_prepare(
    request: MulticastRequest, mapping: HamiltonCycleMapping
) -> list[Node]:
    """Message preparation (Fig. 5.1): destinations sorted ascending by
    the cycle-position key f."""
    u0 = request.source
    return sorted(request.destinations, key=lambda v: mapping.f(v, u0))


def sorted_mp_next_hop(
    mapping: HamiltonCycleMapping,
    source: Node,
    w: Node,
    target: Node,
    target_key: int | None = None,
) -> Node:
    """Message routing step 3 (Fig. 5.2): from node ``w``, select the
    neighboring node with the largest key f not exceeding the key of the
    next destination ``target``.

    For the MC variant the final destination is the source itself with
    the wrap-around key ``m + h(u_0)`` (passed as ``target_key``); the
    source is then also keyed ``m + h(u_0)`` when it appears as a
    candidate neighbor, so the walk can close the cycle.
    """
    fd = mapping.f(target, source) if target_key is None else target_key
    wrapping_home = target == source
    best = None
    best_f = -1
    for p in mapping.topology.neighbors(w):
        fp = (
            mapping.m + mapping.h(source)
            if wrapping_home and p == source
            else mapping.f(p, source)
        )
        if best_f < fp <= fd:
            best, best_f = p, fp
    if best is None:  # cannot happen for a valid Hamilton cycle (Fact 2)
        raise RuntimeError("sorted MP routing found no admissible neighbor")
    return best


@register(
    "sorted-mp",
    kind="static-route",
    topologies=("mesh2d", "hypercube"),
    result_model="path",
    reference="§5.1 Figs. 5.1-5.2 (Theorem 5.1; meshes need one even side)",
)
def sorted_mp_route(
    request: MulticastRequest, mapping: HamiltonCycleMapping | None = None
) -> MulticastPath:
    """Run the sorted MP algorithm; returns the induced multicast path."""
    if mapping is None:
        mapping = canonical_cycle(request.topology)
    u0 = request.source
    remaining = sorted_mp_prepare(request, mapping)
    nodes = _walk(mapping, u0, [(d, mapping.f(d, u0)) for d in remaining])
    path = MulticastPath(request.topology, nodes)
    path.validate(request)
    return path


@register(
    "sorted-mc",
    kind="static-route",
    topologies=("mesh2d", "hypercube"),
    result_model="cycle",
    reference="§5.1 (Def. 3.2 acknowledgement cycle variant)",
)
def sorted_mc_route(
    request: MulticastRequest, mapping: HamiltonCycleMapping | None = None
) -> MulticastCycle:
    """Run the sorted MC algorithm: the MP algorithm with the source
    appended as final destination at cycle position ``m + h(u_0)``
    (§5.1, last paragraph).  Returns the induced multicast cycle."""
    if mapping is None:
        mapping = canonical_cycle(request.topology)
    u0 = request.source
    keyed = [(d, mapping.f(d, u0)) for d in sorted_mp_prepare(request, mapping)]
    keyed.append((u0, mapping.m + mapping.h(u0)))
    nodes = _walk(mapping, u0, keyed)
    assert nodes[-1] == u0
    cycle = MulticastCycle(request.topology, nodes[:-1])
    cycle.validate(request)
    return cycle


def _walk(
    mapping: HamiltonCycleMapping, u0: Node, keyed_dests: list[tuple[Node, int]]
) -> list[Node]:
    """Drive the distributed routing (Fig. 5.2) from node to node,
    collecting the visited node sequence.

    ``keyed_dests`` carries explicit f keys so that the MC variant can
    give the source its wrap-around key ``m + h(u_0)``.
    """
    nodes = [u0]
    w = u0
    queue = list(keyed_dests)
    guard = 0
    while queue:
        target, fkey = queue[0]
        if w == target:
            queue.pop(0)
            continue
        w = sorted_mp_next_hop(mapping, u0, w, target, target_key=fkey)
        nodes.append(w)
        guard += 1
        if guard > 2 * mapping.m + 2:
            raise RuntimeError("sorted MP routing failed to terminate")
    return nodes
