"""Surgical tests for worm/packet internals: blocking corner cases,
retry paths, and drain edge cases across the switching substrates."""

from __future__ import annotations


from repro.labeling import canonical_labeling
from repro.sim import Environment, SAFNetwork, SimConfig, WormholeNetwork
from repro.sim.circuit import inject_circuit_path
from repro.sim.vct import inject_vct_path
from repro.topology import Mesh2D


def line(n, row=0):
    return [(i, row) for i in range(n)]


def make():
    env = Environment()
    cfg = SimConfig()
    return env, WormholeNetwork(env, cfg), cfg


class TestPathWormBlocking:
    def test_block_at_source_holds_nothing(self):
        env, net, cfg = make()
        nodes = line(4)
        net.inject_path(1, nodes, {nodes[-1]})
        net.inject_path(2, nodes, {nodes[-1]})
        # after the first acquisition instant, worm 2 is queued on the
        # first channel and holds zero channels
        env.run(until=cfg.flit_time / 2)
        total_held = sum(c.in_use for c in net.channels.values())
        assert total_held <= len(nodes) - 1
        first = net.channels[((0, 0), (1, 0))]
        assert len(first.waiters) == 1
        assert net.run_to_completion()

    def test_mid_path_block_holds_prefix(self):
        env, net, cfg = make()
        # blocker owns channel (2,0)->(3,0) for a long time
        net.inject_path(9, [(2, 0), (3, 0)], {(3, 0)})
        net.inject_path(1, line(6), {(5, 0)})
        env.run(until=3 * cfg.flit_time)
        # worm 1 should hold its first two channels while waiting
        held = {k for k, c in net.channels.items() if c.in_use}
        assert ((0, 0), (1, 0)) in held and ((1, 0), (2, 0)) in held
        assert net.run_to_completion()

    def test_three_deep_queue_drains_in_order(self):
        env, net, cfg = make()
        nodes = line(3)
        for mid in (1, 2, 3):
            net.inject_path(mid, nodes, {nodes[-1]})
        assert net.run_to_completion()
        order = [d.message_id for d in net.deliveries]
        assert order == [1, 2, 3]


class TestVCTEdgeCases:
    def test_block_at_source_no_segment_drain(self):
        env, net, cfg = make()
        nodes = line(4)
        net.inject_path(9, [(0, 0), (1, 0)], {(1, 0)})
        inject_vct_path(net, 1, nodes, {nodes[-1]})
        assert net.run_to_completion()
        assert {d.destination for d in net.deliveries} == {(1, 0), (3, 0)}

    def test_double_block_two_drains(self):
        env, net, cfg = make()
        nodes = line(7)
        # two long-lived blockers at different depths
        net.inject_path(8, [(2, 0), (3, 0)], {(3, 0)})
        net.inject_path(9, [(5, 0), (6, 0)], {(6, 0)})
        inject_vct_path(net, 1, nodes, {nodes[-1]})
        assert net.run_to_completion()
        assert all(c.in_use == 0 for c in net.channels.values())
        final = [d for d in net.deliveries if d.message_id == 1]
        assert len(final) == 1

    def test_vct_latency_no_worse_than_double_saf(self):
        """Even fully buffered at every hop, a VCT message costs about
        one message time per hop — never more than SAF-like behaviour."""
        env, net, cfg = make()
        nodes = line(5)
        inject_vct_path(net, 1, nodes, {nodes[-1]})
        net.run_to_completion()
        (d,) = net.deliveries
        assert d.latency <= 4 * cfg.message_time


class TestCircuitEdgeCases:
    def test_probe_blocks_holding_partial_circuit(self):
        env, net, cfg = make()
        net.inject_path(9, [(3, 0), (4, 0)], {(4, 0)})
        inject_circuit_path(net, 1, line(6), {(5, 0)})
        env.run(until=4 * cfg.flit_time)
        held = {k for k, c in net.channels.items() if c.in_use}
        # the probe reserved everything up to the blocker
        assert ((0, 0), (1, 0)) in held and ((2, 0), (3, 0)) in held
        assert net.run_to_completion()

    def test_empty_circuit(self):
        env, net, cfg = make()
        inject_circuit_path(net, 1, [(0, 0)], set())
        assert net.run_to_completion()


class TestAdaptiveInternals:
    def test_adaptive_detours_around_busy_channel(self):
        env, net, cfg = make()
        mesh = Mesh2D(4, 4)
        lab = canonical_labeling(mesh)
        # occupy the deterministic first-choice channel from (0,0) to (1,1):
        # R would go (0,0)->(1,0) (label 1)
        net.inject_path(9, [(0, 0), (1, 0)], {(1, 0)})
        worm = net.inject_adaptive_path(1, (0, 0), [(1, 1)], lab)
        assert net.run_to_completion()
        # the adaptive worm either waited or detoured via (0,1); its
        # recorded node path is label-monotone either way
        labels = [lab.label(v) for v in worm.nodes]
        assert labels == sorted(labels)
        assert worm.nodes[-1] == (1, 1)

    def test_adaptive_blocks_when_no_candidate_free(self):
        env, net, cfg = make()
        mesh = Mesh2D(4, 4)
        lab = canonical_labeling(mesh)
        # from (0,0) toward (3,0) the only monotone profitable channel is
        # (0,0)->(1,0); occupy it and confirm the worm waits, then goes.
        net.inject_path(9, [(0, 0), (1, 0)], {(1, 0)})
        net.inject_adaptive_path(1, (0, 0), [(3, 0)], lab)
        assert net.run_to_completion()
        arrival = [d for d in net.deliveries if d.message_id == 1]
        blocker = [d for d in net.deliveries if d.message_id == 9]
        assert arrival[0].delivered_at > blocker[0].delivered_at


class TestSAFInternals:
    def test_structured_buffer_classes_isolated(self):
        env = Environment()
        net = SAFNetwork(env, SimConfig(), buffers_per_node=1, structured=True)
        # two packets passing through the same node with DIFFERENT
        # hops-remaining use different buffer classes: no contention
        net.inject(1, line(4))           # at (1,0): 2 remaining
        net.inject(2, [(0, 0), (1, 0), (2, 0)])  # at (1,0): 1 remaining
        assert net.run_to_completion()
        assert len(net.deliveries) == 2

    def test_unstructured_pool_contention(self):
        env = Environment()
        net = SAFNetwork(env, SimConfig(), buffers_per_node=1, structured=False)
        net.inject(1, line(4))
        net.inject(2, [(0, 1), (1, 1), (1, 0), (2, 0), (3, 0)])
        assert net.run_to_completion()

    def test_multicast_delivery_at_intermediate(self):
        env = Environment()
        net = SAFNetwork(env, SimConfig(), buffers_per_node=3)
        nodes = line(5)
        net.inject(1, nodes, destinations={nodes[2], nodes[4]})
        assert net.run_to_completion()
        assert {d.destination for d in net.deliveries} == {nodes[2], nodes[4]}
        t2, t4 = sorted(d.delivered_at for d in net.deliveries)
        assert t2 < t4
