"""Backoff/jitter schedule properties (`repro.retry`).

One module feeds two consumers — `run_resilient`'s source-retry delays
and the service supervisor's requeue backoff — so these properties pin
both at once: determinism under a fixed seed, the undithered schedule
as an upper bound, and the remaining-deadline cap.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retry import backoff_delay, jitter_unit, retry_delay

seeds = st.integers(min_value=0, max_value=2**64 - 1)
request_ids = st.integers(min_value=0, max_value=2**32)
attempts = st.integers(min_value=0, max_value=20)
bases = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)
factors = st.floats(min_value=1.0, max_value=4.0, allow_nan=False)
jitters = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestBackoffDelay:
    def test_exact_schedule(self):
        assert backoff_delay(0, base=0.2, factor=2.0) == 0.2
        assert backoff_delay(1, base=0.2, factor=2.0) == 0.4
        assert backoff_delay(3, base=0.2, factor=2.0) == 1.6

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(-1, base=0.1, factor=2.0)

    def test_matches_run_resilient_expression(self):
        """`run_resilient` historically computed
        ``retry_timeout * retry_backoff ** used`` inline; the shared
        helper must be bit-identical so fault-parity suites stay
        green."""
        retry_timeout, retry_backoff = 200e-6, 2.0
        for used in range(8):
            assert backoff_delay(used, base=retry_timeout, factor=retry_backoff) == (
                retry_timeout * retry_backoff**used
            )

    @given(attempt=attempts, base=bases, factor=factors)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_attempt(self, attempt, base, factor):
        assert backoff_delay(attempt + 1, base=base, factor=factor) >= backoff_delay(
            attempt, base=base, factor=factor
        )


class TestJitterUnit:
    @given(seed=seeds, request_id=request_ids, attempt=attempts)
    @settings(max_examples=200, deadline=None)
    def test_unit_interval_and_deterministic(self, seed, request_id, attempt):
        u = jitter_unit(seed, request_id, attempt)
        assert 0.0 <= u < 1.0
        assert u == jitter_unit(seed, request_id, attempt)

    def test_streams_decorrelated(self):
        """Different requests (and different attempts of one request)
        draw from visibly different points of the stream."""
        draws = {jitter_unit(1, rid, a) for rid in range(32) for a in range(4)}
        assert len(draws) == 32 * 4


class TestRetryDelay:
    @given(
        attempt=attempts,
        base=bases,
        factor=factors,
        jitter=jitters,
        seed=seeds,
        request_id=request_ids,
    )
    @settings(max_examples=200, deadline=None)
    def test_bounded_by_undithered_schedule(
        self, attempt, base, factor, jitter, seed, request_id
    ):
        delay = retry_delay(
            attempt,
            base=base,
            factor=factor,
            jitter=jitter,
            seed=seed,
            request_id=request_id,
        )
        ceiling = backoff_delay(attempt, base=base, factor=factor)
        assert 0.0 <= delay <= ceiling
        # jitter only ever pulls the delay *down* (never past a
        # request deadline), by at most the jitter fraction
        if math.isfinite(ceiling):
            assert delay >= ceiling * (1.0 - jitter) * (1.0 - 1e-12)

    @given(
        attempt=attempts,
        base=bases,
        factor=factors,
        jitter=jitters,
        seed=seeds,
        request_id=request_ids,
        remaining=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_exceeds_remaining_deadline(
        self, attempt, base, factor, jitter, seed, request_id, remaining
    ):
        delay = retry_delay(
            attempt,
            base=base,
            factor=factor,
            jitter=jitter,
            seed=seed,
            request_id=request_id,
            remaining=remaining,
        )
        assert delay <= remaining

    @given(seed=seeds, request_id=request_ids, attempt=attempts)
    @settings(max_examples=100, deadline=None)
    def test_deterministic_under_fixed_seed(self, seed, request_id, attempt):
        kwargs = dict(
            base=0.01, factor=2.0, jitter=0.5, seed=seed, request_id=request_id
        )
        assert retry_delay(attempt, **kwargs) == retry_delay(attempt, **kwargs)

    def test_zero_jitter_is_pure_backoff(self):
        for attempt in range(6):
            assert retry_delay(attempt, base=0.01, factor=2.0) == backoff_delay(
                attempt, base=0.01, factor=2.0
            )

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            retry_delay(0, base=0.01, factor=2.0, jitter=1.5)
        with pytest.raises(ValueError):
            retry_delay(0, base=0.01, factor=2.0, jitter=-0.1)

    def test_negative_remaining_clamps_to_zero(self):
        assert retry_delay(3, base=0.1, factor=2.0, remaining=-1.0) == 0.0
